package httpserve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"cqrep/internal/relation"
)

// wire.go implements the binary result framing of POST /v1/query/{view} —
// the Accept-negotiated alternative to NDJSON (DESIGN.md §5). A binary
// stream is
//
//	header:      magic "CQB1" | arity uvarint
//	data frame:  0x01 | byteLen uvarint | count uvarint | count×arity
//	             values, 8-byte big-endian each (Tuple.AppendEncode)
//	end frame:   0x00
//	error frame: 0x02 | msgLen uvarint | message (UTF-8)
//
// Tuples appear in enumeration order, exactly as the NDJSON stream would
// carry them. Every complete stream ends with an end frame or an error
// frame; a reader that hits EOF first has a truncated stream and must say
// so — the explicit terminal frame is what distinguishes "all results
// delivered" from "connection died", mirroring core.IterErr. The error
// frame is the binary twin of the NDJSON terminal {"error": ...} object.
//
// Framing exists so the server can flush once per batch instead of once
// per tuple: values inside a frame are contiguous, and the first frame of
// a stream carries a single tuple so batching never defers the
// time-to-first-answer delay the paper's guarantees are about.

// BinaryMediaType is the negotiated content type of the binary framing.
const BinaryMediaType = "application/x-cqrep-binary"

// NDJSONMediaType is the default stream content type.
const NDJSONMediaType = "application/x-ndjson"

// binaryMagic leads every binary stream; it doubles as a version tag (the
// "1") so a future layout can negotiate a different magic.
const binaryMagic = "CQB1"

// Frame kind bytes.
const (
	frameEnd  = 0x00
	frameData = 0x01
	frameErr  = 0x02
)

// Reader-side sanity bounds: a data frame larger than maxFrameBytes or an
// error message larger than maxErrBytes is corruption, not data — reject
// before sizing an allocation from attacker-controlled lengths.
const (
	maxFrameBytes = 1 << 26 // 64 MiB
	maxErrBytes   = 1 << 16
	maxWireArity  = 1 << 16
)

// wireFormat is the negotiated result encoding of one query request.
type wireFormat int

const (
	formatNDJSON wireFormat = iota
	formatBinary
)

// negotiateFormat picks the result encoding from an Accept header as a
// comma-separated list of media ranges with optional q-values (RFC 9110
// §12.5.1, restricted to what matters here). The binary framing is chosen
// iff some element names its exact media type with q > 0 AND that q is at
// least the best q offered for NDJSON — wildcards (*/*, application/*)
// count toward NDJSON, never select binary, so a generic client keeps
// getting the universally consumable default. On a tie between the two
// explicit types, binary wins: a client that spells out the binary media
// type is one that can decode it. There is no 406 — the stream formats
// carry identical information and NDJSON is the universal fallback.
func negotiateFormat(accept string) wireFormat {
	var qBinary, qNDJSON float64
	for _, part := range strings.Split(accept, ",") {
		mt, params, _ := strings.Cut(part, ";")
		mt = strings.TrimSpace(mt)
		if mt == "" {
			continue
		}
		q := acceptQ(params)
		switch {
		case strings.EqualFold(mt, BinaryMediaType):
			qBinary = max(qBinary, q)
		case strings.EqualFold(mt, NDJSONMediaType),
			mt == "*/*",
			strings.EqualFold(mt, "application/*"):
			qNDJSON = max(qNDJSON, q)
		}
	}
	if qBinary > 0 && qBinary >= qNDJSON {
		return formatBinary
	}
	return formatNDJSON
}

// acceptQ extracts the q-value from one media range's parameter list
// (";level=1;q=0.9"). An absent or unparseable q is 1 per the RFC's
// default; values are clamped into [0, 1].
func acceptQ(params string) float64 {
	for _, p := range strings.Split(params, ";") {
		k, v, ok := strings.Cut(p, "=")
		if !ok || !strings.EqualFold(strings.TrimSpace(k), "q") {
			continue
		}
		q, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return 1
		}
		if q < 0 {
			return 0
		}
		if q > 1 {
			return 1
		}
		return q
	}
	return 1
}

// binaryWriter accumulates tuples into one pending data frame and writes
// whole frames to w. The pending payload buffer is reused across frames,
// so steady-state encoding allocates nothing per tuple.
type binaryWriter struct {
	w       io.Writer
	count   int    // tuples in the pending frame
	payload []byte // their encoded values
	scratch []byte // frame header staging
}

func newBinaryWriter(w io.Writer) *binaryWriter { return &binaryWriter{w: w} }

// Header writes the stream header.
func (e *binaryWriter) Header(arity int) error {
	e.scratch = append(e.scratch[:0], binaryMagic...)
	e.scratch = binary.AppendUvarint(e.scratch, uint64(arity))
	_, err := e.w.Write(e.scratch)
	return err
}

// Add stages one tuple into the pending frame.
func (e *binaryWriter) Add(t relation.Tuple) {
	e.payload = t.AppendEncode(e.payload)
	e.count++
}

// Pending reports the number of staged tuples.
func (e *binaryWriter) Pending() int { return e.count }

// Flush writes the pending tuples as one data frame; a pending count of
// zero writes nothing.
func (e *binaryWriter) Flush() error {
	if e.count == 0 {
		return nil
	}
	e.scratch = append(e.scratch[:0], frameData)
	var cnt [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(cnt[:], uint64(e.count))
	e.scratch = binary.AppendUvarint(e.scratch, uint64(n+len(e.payload)))
	e.scratch = append(e.scratch, cnt[:n]...)
	_, err := e.w.Write(e.scratch)
	if err == nil {
		_, err = e.w.Write(e.payload)
	}
	e.count = 0
	e.payload = e.payload[:0]
	return err
}

// End terminates a complete stream.
func (e *binaryWriter) End() error {
	_, err := e.w.Write([]byte{frameEnd})
	return err
}

// Error terminates a failed stream with the terminal error frame.
func (e *binaryWriter) Error(msg string) error {
	if len(msg) > maxErrBytes {
		msg = msg[:maxErrBytes]
	}
	e.scratch = append(e.scratch[:0], frameErr)
	e.scratch = binary.AppendUvarint(e.scratch, uint64(len(msg)))
	e.scratch = append(e.scratch, msg...)
	_, err := e.w.Write(e.scratch)
	return err
}

// binaryReader decodes one binary stream. It never trusts a length field:
// frame and message sizes are bounded before allocation, data frames must
// hold exactly count×arity values, and EOF anywhere before the terminal
// frame is reported as truncation rather than a clean end.
type binaryReader struct {
	br    *bufio.Reader
	arity int
	frame []byte // undecoded values of the current data frame
	count int    // tuples remaining in the current data frame
	buf   []byte // frame buffer, reused across frames
	err   error
	done  bool
}

// newBinaryReader consumes the stream header and returns the frame
// decoder.
func newBinaryReader(r io.Reader) (*binaryReader, error) {
	br := bufio.NewReaderSize(r, 32*1024)
	var magic [len(binaryMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("httpserve: binary stream header: %w", truncated(err))
	}
	if string(magic[:]) != binaryMagic {
		return nil, fmt.Errorf("httpserve: binary stream has bad magic %q", magic[:])
	}
	arity, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("httpserve: binary stream arity: %w", truncated(err))
	}
	if arity > maxWireArity {
		return nil, fmt.Errorf("httpserve: binary stream arity %d implausible", arity)
	}
	return &binaryReader{br: br, arity: int(arity)}, nil
}

// Arity reports the per-tuple value count declared by the stream header.
func (d *binaryReader) Arity() int { return d.arity }

// Next returns the next tuple in stream order. After it returns false,
// Err distinguishes a complete stream (nil) from a truncated or failed
// one.
func (d *binaryReader) Next() (relation.Tuple, bool) {
	for {
		if d.err != nil || d.done {
			return nil, false
		}
		if d.count > 0 {
			t := make(relation.Tuple, d.arity)
			rest, ok := t.DecodeFrom(d.frame)
			if !ok { // unreachable: frame length is validated on read
				d.err = fmt.Errorf("httpserve: binary frame underruns its tuple count")
				return nil, false
			}
			d.frame = rest
			d.count--
			return t, true
		}
		if !d.readFrame() {
			return nil, false
		}
	}
}

// readFrame loads the next frame, reporting whether a data frame with at
// least the potential for tuples arrived (an empty data frame loops).
func (d *binaryReader) readFrame() bool {
	kind, err := d.br.ReadByte()
	if err != nil {
		d.err = fmt.Errorf("httpserve: binary stream: %w", truncated(err))
		return false
	}
	switch kind {
	case frameEnd:
		d.done = true
		return false
	case frameErr:
		n, err := binary.ReadUvarint(d.br)
		if err != nil {
			d.err = fmt.Errorf("httpserve: binary error frame: %w", truncated(err))
			return false
		}
		if n > maxErrBytes {
			d.err = fmt.Errorf("httpserve: binary error frame of %d bytes implausible", n)
			return false
		}
		msg := make([]byte, n)
		if _, err := io.ReadFull(d.br, msg); err != nil {
			d.err = fmt.Errorf("httpserve: binary error frame: %w", truncated(err))
			return false
		}
		d.done = true
		d.err = &RemoteError{Status: http.StatusOK, Message: string(msg)}
		return false
	case frameData:
		n, err := binary.ReadUvarint(d.br)
		if err != nil {
			d.err = fmt.Errorf("httpserve: binary data frame: %w", truncated(err))
			return false
		}
		if n > maxFrameBytes {
			d.err = fmt.Errorf("httpserve: binary data frame of %d bytes implausible", n)
			return false
		}
		if uint64(cap(d.buf)) < n {
			d.buf = make([]byte, n)
		}
		d.buf = d.buf[:n]
		if _, err := io.ReadFull(d.br, d.buf); err != nil {
			d.err = fmt.Errorf("httpserve: binary data frame: %w", truncated(err))
			return false
		}
		count, used := binary.Uvarint(d.buf)
		if used <= 0 {
			d.err = fmt.Errorf("httpserve: binary data frame has no tuple count")
			return false
		}
		body := d.buf[used:]
		if d.arity > 0 {
			if count != uint64(len(body))/uint64(8*d.arity) || len(body)%(8*d.arity) != 0 {
				d.err = fmt.Errorf("httpserve: binary data frame claims %d tuples over %d value bytes", count, len(body))
				return false
			}
		} else if count != 0 || len(body) != 0 {
			// Arity-0 tuples occupy no bytes, so a count here is not backed
			// by data — reject it instead of synthesizing empty tuples.
			d.err = fmt.Errorf("httpserve: binary data frame claims %d tuples over %d value bytes for arity 0", count, len(body))
			return false
		}
		d.frame = body
		d.count = int(count)
		return true
	default:
		d.err = fmt.Errorf("httpserve: unknown binary frame kind %#x", kind)
		return false
	}
}

// Err reports the stream's terminal state once Next has returned false:
// nil for a complete stream, a *RemoteError for a server-reported failure,
// any other error for truncation or corruption.
func (d *binaryReader) Err() error { return d.err }

// truncated maps the io EOF pair onto io.ErrUnexpectedEOF: in a framed
// stream any EOF before the terminal frame means truncation, including one
// that lands exactly on a frame boundary.
func truncated(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
