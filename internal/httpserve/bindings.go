package httpserve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"

	"cqrep/internal/relation"
)

// bindings.go parses the query-request body of POST /v1/query/{view} (the
// wire format is specified in DESIGN.md §5). The canonical shape is
//
//	{"bindings": {"x": 1, "z": 3}, "limit": 100}
//
// where "bindings" maps bound-variable names to int64 values (the view's
// value domain) and "limit" optionally caps the number of streamed tuples
// (0 or absent = unlimited). An empty body or empty object is a valid
// request with no bindings, for views whose head variables are all free.
//
// The parser is adversarial-input hardened (it is a fuzz target): it never
// panics, allocates no more than the input it was handed, and rejects
// unknown fields, non-integer values, values outside int64, and trailing
// garbage after the request object. Duplicate keys follow encoding/json's
// last-value-wins semantics — Go's decoder offers no rejection hook.

// maxBindings bounds the binding map an attacker can make us build; no
// real view has anywhere near this many bound variables.
const maxBindings = 4096

// QueryRequest is the decoded body of POST /v1/query/{view}, exported so
// the coordinator (internal/coord) can parse once and fan the same request
// out to workers.
type QueryRequest struct {
	Bindings map[string]relation.Value
	Limit    int // 0 = unlimited
}

// rawQueryRequest is the strict JSON shape; numbers are kept as
// json.Number so integer values survive beyond float64 precision and
// fractional values are rejected instead of truncated.
type rawQueryRequest struct {
	Bindings map[string]json.Number `json:"bindings"`
	Limit    *json.Number           `json:"limit"`
}

// ParseBindings parses a query-request body. It accepts an empty body as
// a request with no bindings and no limit.
func ParseBindings(data []byte) (QueryRequest, error) {
	req := QueryRequest{}
	if len(bytes.TrimSpace(data)) == 0 {
		return req, nil
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	dec.DisallowUnknownFields()
	var raw rawQueryRequest
	if err := dec.Decode(&raw); err != nil {
		return req, fmt.Errorf("invalid query request: %w", err)
	}
	// One JSON value per body: trailing garbage means a malformed or
	// misframed request, not extra requests to silently ignore.
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return req, fmt.Errorf("invalid query request: trailing data after request object")
	}
	if len(raw.Bindings) > maxBindings {
		return req, fmt.Errorf("invalid query request: %d bindings exceeds the limit of %d", len(raw.Bindings), maxBindings)
	}
	if len(raw.Bindings) > 0 {
		req.Bindings = make(map[string]relation.Value, len(raw.Bindings))
		for name, num := range raw.Bindings {
			v, err := parseValue(num)
			if err != nil {
				return QueryRequest{}, fmt.Errorf("invalid query request: binding %q: %w", name, err)
			}
			req.Bindings[name] = v
		}
	}
	if raw.Limit != nil {
		// The upper bound keeps the value inside int on every platform
		// (32-bit included), so the int conversion below cannot truncate
		// or wrap a validated limit.
		n, err := strconv.ParseInt(raw.Limit.String(), 10, 64)
		if err != nil || n < 0 || n > 1<<31-1 {
			return QueryRequest{}, fmt.Errorf("invalid query request: limit %q is not a non-negative integer below 2^31", raw.Limit.String())
		}
		req.Limit = int(n)
	}
	return req, nil
}

// parseValue converts a JSON number to a Value, rejecting fractions,
// exponents, and out-of-range magnitudes instead of rounding them.
func parseValue(num json.Number) (relation.Value, error) {
	v, err := strconv.ParseInt(num.String(), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("value %q is not an int64", num.String())
	}
	return relation.Value(v), nil
}
