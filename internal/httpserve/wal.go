package httpserve

import (
	"fmt"
	"os"
	"path/filepath"

	"cqrep/internal/core"
	"cqrep/internal/wal"
)

// wal.go is the serving side of durable maintenance (DESIGN.md §9): when
// Options.WALDir is set, each snapshot load looks for <view>.wal next to
// it and replays the log's buffered-but-uncompiled churn on top of the
// loaded representation before the view goes into the registry. The
// recovered state is then persisted back over the snapshot file (atomic
// temp+rename) and the log compacted, so the next restart replays
// nothing; if persisting fails the log is left untouched — replay is
// idempotent, so serving correctness never depends on compaction
// succeeding. Replay failures (a log for a different view, an arity
// mismatch) fail the load: serving a snapshot while ignoring updates the
// writer had acknowledged as durable would be silent data loss.

// walStatus records one view's recovery outcome, for /readyz and
// /v1/stats.
type walStatus struct {
	path       string
	replayed   int
	compactErr error // non-nil: recovered state served, log not truncated
}

// walPathFor names the update log of a registry entry: <name>.wal inside
// WALDir.
func walPathFor(dir, name string) string {
	return filepath.Join(dir, name+".wal")
}

// recoverWAL replays the update log at walPath onto rep and returns the
// recovered representation (rep itself when the log is empty or absent).
// On a non-empty log the recovered snapshot is saved back to snapPath and
// the log compacted; a failure there is reported in the status but does
// not fail recovery.
func recoverWAL(rep *core.Representation, walPath, snapPath string) (*core.Representation, walStatus, error) {
	st := walStatus{path: walPath}
	entries, err := wal.Replay(walPath)
	if err != nil {
		return nil, st, fmt.Errorf("replaying %s: %w", walPath, err)
	}
	if len(entries) == 0 {
		return rep, st, nil
	}
	// Rebuild under the snapshot's own recipe: a fallback recompile with
	// different options could legally change the enumeration order, and
	// the registry contract (EnumOrder) must survive recovery.
	m, err := core.ResumeMaintained(rep, 1, rebuildOptions(rep)...)
	if err != nil {
		return nil, st, fmt.Errorf("resuming %s for WAL recovery: %w", snapPath, err)
	}
	// No update log is armed for the recovery replay: the entries are
	// already durable in the real log, and truncation happens separately
	// (compactAfterRecovery) only after the recovered snapshot persists.
	for _, e := range entries {
		if err := m.Replay(e.Rel, e.Tuple, e.Del); err != nil {
			return nil, st, fmt.Errorf("replaying %s entry %d: %w", walPath, e.Seq, err)
		}
	}
	if err := m.Flush(); err != nil {
		return nil, st, fmt.Errorf("compiling WAL tail of %s: %w", walPath, err)
	}
	st.replayed = len(entries)
	recovered := m.Rep()
	st.compactErr = compactAfterRecovery(recovered, walPath, snapPath)
	return recovered, st, nil
}

// rebuildOptions reconstructs the build options a loaded snapshot was
// compiled under, from its stats: strategy, shard count, and (for the
// Theorem-1 structure) the realized τ.
func rebuildOptions(rep *core.Representation) []core.Option {
	st := rep.Stats()
	opts := []core.Option{core.WithStrategy(st.Strategy)}
	if st.Shards > 1 {
		opts = append(opts, core.WithShards(st.Shards))
	}
	if st.Strategy == core.PrimitiveStrategy && st.Tau > 0 {
		opts = append(opts, core.WithTau(st.Tau))
	}
	return opts
}

// compactAfterRecovery runs the snapshot-first truncation protocol: save
// the recovered representation over the snapshot file (atomic sibling
// rename), then drop every replayed entry from the log. Any failure
// leaves the log as it was.
func compactAfterRecovery(rep *core.Representation, walPath, snapPath string) error {
	if err := saveSnapshot(rep, snapPath); err != nil {
		return err
	}
	log, _, err := wal.Open(walPath)
	if err != nil {
		return err
	}
	defer log.Close()
	// The snapshot above already covers every entry; the hook has nothing
	// left to persist.
	log.SetSnapshot(func(uint64) error { return nil })
	return log.Compact(log.LastSeq())
}

// saveSnapshot writes rep's snapshot frame atomically next to path.
func saveSnapshot(rep *core.Representation, path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := rep.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	// CreateTemp opens 0600; snapshots are world-readable artifacts.
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
