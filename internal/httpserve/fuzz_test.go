package httpserve

import (
	"encoding/json"
	"testing"

	"cqrep/internal/relation"
)

// FuzzBindingsJSON hardens the HTTP binding parser against adversarial
// request bodies: whatever arrives on the wire, ParseBindings must not
// panic, must bound what it builds, and must either reject the input or
// return a self-consistent request.
func FuzzBindingsJSON(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{"bindings": {}}`,
		`{"bindings": {"x": 1, "z": 3}}`,
		`{"bindings": {"x": -9223372036854775808}, "limit": 100}`,
		`{"bindings": {"x": 9223372036854775807}}`,
		`{"limit": 0}`,
		`{"limit": 1099511627776}`,
		`{"bindings": {"x": 1.5}}`,
		`{"bindings": {"x": 1e3}}`,
		`{"bindings": {"x": "1"}}`,
		`{"bindings": {"x": null}}`,
		`{"bindings": {"x": 1}, "unknown": true}`,
		`{"bindings": {"x": 1}} trailing`,
		`{"bindings": {"x": 1}}{"bindings": {"x": 2}}`,
		`[1, 2, 3]`,
		`{"bindings": 5}`,
		`{"limit": -1}`,
		`{"limit": 1.5}`,
		"{\"bindings\": {\"\\u0000\": 1}}",
		`{not json`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseBindings(data)
		if err != nil {
			// Rejected input must not leak a half-built request.
			if req.Bindings != nil || req.Limit != 0 {
				t.Fatalf("error %v returned non-zero request %+v", err, req)
			}
			return
		}
		if req.Limit < 0 {
			t.Fatalf("accepted negative limit %d", req.Limit)
		}
		if len(req.Bindings) > maxBindings {
			t.Fatalf("accepted %d bindings, cap is %d", len(req.Bindings), maxBindings)
		}
		// An accepted request must round-trip through the canonical wire
		// shape: what we parsed is what a client can send.
		if len(req.Bindings) > 0 {
			body, err := json.Marshal(map[string]any{"bindings": req.Bindings, "limit": req.Limit})
			if err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
			again, err := ParseBindings(body)
			if err != nil {
				t.Fatalf("re-parse of canonical form %s: %v", body, err)
			}
			if len(again.Bindings) != len(req.Bindings) || again.Limit != req.Limit {
				t.Fatalf("round trip changed the request: %+v vs %+v", req, again)
			}
			for k, v := range req.Bindings {
				if again.Bindings[k] != v {
					t.Fatalf("round trip changed binding %q: %d vs %d", k, v, again.Bindings[k])
				}
			}
		}
		_ = relation.Value(0)
	})
}
