package httpserve

import (
	"testing"

	"cqrep/internal/structlayout"
)

// TestHotStructFieldAlignment pins the streaming-path structs at zero
// padding waste: one StreamWriter and one binaryWriter exist per response,
// one ndjsonStream/binaryStream/binaryReader per client stream, and the
// LatencyHist bucket array is read on every recorded sample — so a field
// added in the wrong position is a real per-request cost. All of these
// were already optimally packed when this test was introduced; it exists
// so they stay that way.
func TestHotStructFieldAlignment(t *testing.T) {
	for name, v := range map[string]any{
		"StreamWriter": StreamWriter{},
		"binaryWriter": binaryWriter{},
		"binaryReader": binaryReader{},
		"ndjsonStream": ndjsonStream{},
		"binaryStream": binaryStream{},
		"LatencyHist":  LatencyHist{},
		"viewEntry":    viewEntry{},
	} {
		size, optimal := structlayout.Waste(v)
		if size > optimal {
			t.Errorf("%s: size %d > optimal %d — reorder fields to remove padding", name, size, optimal)
		}
	}
}
