package httpserve

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"cqrep/internal/core"
	"cqrep/internal/cq"
	"cqrep/internal/relation"
)

// churn_test.go hammers the HTTP layer's two swap points under the race
// detector: hot reload (POST /v1/reload) and shutdown (Handler.Close)
// while queries are in flight. The invariant in both cases is that no
// request ever observes a half-swapped representation: every response is
// either one complete enumeration from exactly one snapshot generation,
// or a clean error — never a silent blend or truncation.

// churnView is served by every churn snapshot generation.
var churnView = cq.MustParse("V[bf](x, y) :- R(x, y)")

// writeChurnSnapshot compiles a generation whose 10 answers for x=1 all
// live in [marker, marker+10) and atomically installs it at path. It
// returns an error instead of failing the test so goroutines can call it.
func writeChurnSnapshot(path string, marker relation.Value) error {
	db := relation.NewDatabase()
	r := relation.NewRelation("R", 2)
	for i := relation.Value(0); i < 10; i++ {
		r.MustInsert(1, marker+i)
	}
	db.Add(r)
	rep, err := core.Build(churnView, db)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := rep.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// checkWholeGeneration asserts a response is one complete, single-
// generation enumeration: exactly 10 tuples, all from the same marker.
func checkWholeGeneration(tuples []relation.Tuple) error {
	if len(tuples) != 10 {
		return fmt.Errorf("got %d tuples, want 10 (truncated or blended stream)", len(tuples))
	}
	gen := tuples[0][0] / 1000
	for _, tp := range tuples {
		if tp[0]/1000 != gen {
			return fmt.Errorf("tuples mix generations: %v", tuples)
		}
	}
	return nil
}

func TestReloadChurn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.cqs")
	if err := writeChurnSnapshot(path, 1000); err != nil {
		t.Fatal(err)
	}
	h, err := New([]string{path}, Options{Workers: 4, Buffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()
	cl := &Client{Base: ts.URL}

	const reloads = 30
	var done atomic.Bool
	var wg sync.WaitGroup

	// Writer: alternate snapshot generations and hot-reload each one.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for i := 0; i < reloads; i++ {
			if err := writeChurnSnapshot(path, relation.Value(1000*(i%2+1))); err != nil {
				t.Errorf("snapshot %d: %v", i, err)
				return
			}
			if _, err := cl.Reload(context.Background()); err != nil {
				t.Errorf("reload %d: %v", i, err)
				return
			}
		}
	}()

	// Readers: every response must be one whole generation.
	var served, unavailable atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				res, err := cl.Query(context.Background(), "V", map[string]relation.Value{"x": 1}, 0)
				if err != nil {
					var re *RemoteError
					// A request that exhausts its retries while reloads
					// storm past it backs off with 503; that is a clean
					// refusal, not a torn read.
					if errors.As(err, &re) && re.Status == 503 {
						unavailable.Add(1)
						continue
					}
					t.Errorf("query: %v", err)
					return
				}
				if err := checkWholeGeneration(res.Tuples); err != nil {
					t.Error(err)
					return
				}
				served.Add(1)
			}
		}()
	}
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("no query completed during the reload churn")
	}
	t.Logf("reload churn: %d whole-generation responses, %d clean 503s across %d reloads", served.Load(), unavailable.Load(), reloads)
}

// TestReloadChurnCached is the reload churn with the result cache on: the
// whole-generation invariant must survive hits, coalesced misses, and
// generation invalidations racing the reload swaps. Every cached replay is
// bytes one live stream produced under one refcounted registry entry, so
// a blend would mean the generation keying is broken.
func TestReloadChurnCached(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.cqs")
	if err := writeChurnSnapshot(path, 1000); err != nil {
		t.Fatal(err)
	}
	h, err := New([]string{path}, Options{Workers: 4, Buffer: 4, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()
	cl := &Client{Base: ts.URL}

	const reloads = 30
	var done atomic.Bool
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for i := 0; i < reloads; i++ {
			if err := writeChurnSnapshot(path, relation.Value(1000*(i%2+1))); err != nil {
				t.Errorf("snapshot %d: %v", i, err)
				return
			}
			if _, err := cl.Reload(context.Background()); err != nil {
				t.Errorf("reload %d: %v", i, err)
				return
			}
		}
	}()

	// Readers repeat one hot binding in both wire formats, so the run
	// exercises hits and coalesced followers, not just leader fills.
	var served, unavailable atomic.Int64
	for w := 0; w < 4; w++ {
		format := FormatNDJSON
		if w%2 == 1 {
			format = FormatBinary
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				res, err := cl.QueryOpts(context.Background(), "V", QueryOptions{
					Bindings: map[string]relation.Value{"x": 1}, Format: format,
				})
				if err != nil {
					var re *RemoteError
					if errors.As(err, &re) && re.Status == 503 {
						unavailable.Add(1)
						continue
					}
					t.Errorf("query: %v", err)
					return
				}
				if err := checkWholeGeneration(res.Tuples); err != nil {
					t.Error(err)
					return
				}
				served.Add(1)
			}
		}()
	}
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("no query completed during the cached reload churn")
	}
	st, on := h.CacheStats()
	if !on {
		t.Fatal("cache reported off despite CacheBytes")
	}
	if st.Hits+st.Misses+st.Coalesced == 0 {
		t.Fatal("no request took the cached path")
	}
	t.Logf("cached reload churn: %d whole responses, %d clean 503s; cache %d hits / %d misses / %d coalesced / %d invalidated",
		served.Load(), unavailable.Load(), st.Hits, st.Misses, st.Coalesced, st.Invalidated)
}

func TestShutdownChurn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.cqs")
	if err := writeChurnSnapshot(path, 1000); err != nil {
		t.Fatal(err)
	}
	h, err := New([]string{path}, Options{Workers: 2, Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	cl := &Client{Base: ts.URL}

	var wg sync.WaitGroup
	var whole, refused atomic.Int64
	start := make(chan struct{})
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				res, err := cl.Query(context.Background(), "V", map[string]relation.Value{"x": 1}, 0)
				if err != nil {
					// Shutdown surfaces as a 503, a terminal stream error
					// (the pool closed mid-stream), or a transport error —
					// all clean refusals.
					refused.Add(1)
					continue
				}
				if err := checkWholeGeneration(res.Tuples); err != nil {
					t.Errorf("response during shutdown: %v", err)
					return
				}
				whole.Add(1)
			}
		}()
	}
	close(start)
	h.Close() // races the queries on purpose
	wg.Wait()
	if whole.Load()+refused.Load() != 6*50 {
		t.Fatalf("accounted %d responses, want %d", whole.Load()+refused.Load(), 6*50)
	}
	t.Logf("shutdown churn: %d whole responses, %d clean refusals", whole.Load(), refused.Load())
}
