package httpserve

import (
	"container/list"
	"context"
	"net/http"
	"sync"
)

// cache.go is the hot-binding result cache of DESIGN.md §8. Real read
// traffic repeats a small set of hot bindings, so the serving fronts keep
// the *encoded* result stream — the exact bytes the Handler (or the
// coordinator's merge) put on the wire — keyed by
//
//	(view name, registry generation, wire format, canonical binding)
//
// and replay it for repeats. Three properties carry the design:
//
//   - Invalidation by generation. The generation component of the key is
//     the registry (or shard-map) generation the request actually served
//     from; reload/attach/detach/move all bump it, and SetGeneration
//     drops every entry from other generations. A cached frame can never
//     mix generations because the bytes were produced by one stream that
//     held one refcounted entry for its whole life, and a replay is only
//     ever keyed to the generation the *current* request loaded.
//   - Bounded memory. Entries are charged their body plus key bytes
//     against a byte budget with LRU eviction; an oversized single result
//     (over maxEntry) is simply not cached, so one huge enumeration
//     cannot wipe the working set.
//   - Coalesced misses. The first miss for a key becomes the flight
//     leader and computes the stream; concurrent requests for the same
//     key wait for the leader's bytes instead of re-enumerating. A
//     leader that fails (client gone, stream error) abandons the flight
//     and the waiters fall back to computing directly — coalescing is an
//     optimization, never a correctness dependency.
type ResultCache struct {
	budget   int64
	maxEntry int64

	mu          sync.Mutex
	gen         uint64
	used        int64
	ll          *list.List // front = most recently used
	entries     map[cacheKey]*list.Element
	flights     map[cacheKey]*CacheFlight
	views       map[string]*cacheViewCounters
	invalidated uint64
}

// cacheKey identifies one cached stream. binding is the canonical
// fixed-width encoding of the bound-variable tuple (Tuple.AppendEncode),
// so two JSON spellings of the same binding share an entry.
type cacheKey struct {
	view    string
	binding string
	gen     uint64
	format  Format
}

type cacheEntry struct {
	key    cacheKey
	body   []byte
	tuples int
}

// cacheViewCounters accumulates per-view cache traffic; guarded by the
// cache mutex (the counters are only touched under it).
type cacheViewCounters struct {
	hits      uint64
	misses    uint64
	evictions uint64
	coalesced uint64
}

// cacheEntryOverhead approximates the bookkeeping bytes per entry (list
// element, map bucket share, struct headers) so the budget tracks real
// memory, not just payload.
const cacheEntryOverhead = 128

func (k cacheKey) cost(bodyLen int) int64 {
	return int64(bodyLen) + int64(len(k.view)) + int64(len(k.binding)) + cacheEntryOverhead
}

// NewResultCache returns a cache bounded by budget bytes, or nil when the
// budget is zero or negative — a nil *ResultCache is the "caching off"
// state and every method on it is safe to skip via the != nil guard.
func NewResultCache(budget int64) *ResultCache {
	if budget <= 0 {
		return nil
	}
	maxEntry := budget / 4
	if maxEntry < 1 {
		maxEntry = 1
	}
	return &ResultCache{
		budget:   budget,
		maxEntry: maxEntry,
		ll:       list.New(),
		entries:  make(map[cacheKey]*list.Element),
		flights:  make(map[cacheKey]*CacheFlight),
		views:    make(map[string]*cacheViewCounters),
	}
}

// MaxEntryBytes is the largest body the cache will store; callers use it
// to cap their capture buffers so an oversized stream stops teeing early.
func (c *ResultCache) MaxEntryBytes() int64 { return c.maxEntry }

// CacheFlight is one in-progress computation of a cache key. The leader
// publishes (or abandons) it exactly once; waiters block on Wait.
type CacheFlight struct {
	key    cacheKey
	done   chan struct{}
	body   []byte
	tuples int
	ok     bool
}

// Wait blocks until the flight resolves or ctx is done. ok reports that
// the leader published a complete stream; !ok (leader failed, or the
// waiter's own context expired) means the caller must compute directly.
func (f *CacheFlight) Wait(ctx context.Context) (body []byte, tuples int, ok bool) {
	select {
	case <-f.done:
		return f.body, f.tuples, f.ok
	case <-ctx.Done():
		return nil, 0, false
	}
}

// CacheResult is the outcome of one Acquire. Exactly one of three shapes
// comes back: a hit (Hit true, Body/Tuples valid — note an empty NDJSON
// body is a legitimate hit), leadership of a new flight (Leader true —
// the caller MUST eventually Publish or Abandon the Flight), or a
// follower ticket (Flight non-nil, Leader false — Wait on it).
type CacheResult struct {
	Body   []byte
	Tuples int
	Flight *CacheFlight
	Hit    bool
	Leader bool
}

// Acquire looks the key up and classifies the caller: hit, flight leader,
// or flight follower. Every call bumps exactly one of the hit / miss /
// coalesced counters, so hit ratio = (hits+coalesced)/(all acquires) —
// a coalesced follower is a request the backend never saw.
func (c *ResultCache) Acquire(view string, gen uint64, format Format, binding string) CacheResult {
	key := cacheKey{view: view, binding: binding, gen: gen, format: format}
	c.mu.Lock()
	defer c.mu.Unlock()
	vc := c.viewCounters(view)
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		vc.hits++
		return CacheResult{Hit: true, Body: e.body, Tuples: e.tuples}
	}
	if f, ok := c.flights[key]; ok {
		vc.coalesced++
		return CacheResult{Flight: f}
	}
	f := &CacheFlight{key: key, done: make(chan struct{})}
	c.flights[key] = f
	vc.misses++
	return CacheResult{Flight: f, Leader: true}
}

// Publish resolves a led flight with a complete stream: waiters get the
// bytes, and the entry is inserted — unless the cache has moved to a
// different generation since (the swap raced the stream; the bytes are
// still correct for the waiters, who acquired under the same generation,
// but must not outlive it in the cache) or the body exceeds maxEntry.
func (c *ResultCache) Publish(f *CacheFlight, body []byte, tuples int) {
	c.mu.Lock()
	delete(c.flights, f.key)
	if f.key.gen == c.gen && f.key.cost(len(body)) <= c.maxEntry {
		if el, ok := c.entries[f.key]; ok {
			// A previous leader for this key already landed (possible when a
			// follower fell back and re-acquired); keep the newest bytes.
			old := el.Value.(*cacheEntry)
			c.used -= old.key.cost(len(old.body))
			c.ll.Remove(el)
			delete(c.entries, f.key)
		}
		e := &cacheEntry{key: f.key, body: body, tuples: tuples}
		c.entries[f.key] = c.ll.PushFront(e)
		c.used += f.key.cost(len(body))
		c.evictLocked()
	}
	c.mu.Unlock()
	f.body, f.tuples, f.ok = body, tuples, true
	close(f.done)
}

// Abandon resolves a led flight without a result: the stream failed or
// was aborted, so waiters fall back to computing directly.
func (c *ResultCache) Abandon(f *CacheFlight) {
	c.mu.Lock()
	delete(c.flights, f.key)
	c.mu.Unlock()
	close(f.done)
}

// evictLocked drops least-recently-used entries until the budget holds.
func (c *ResultCache) evictLocked() {
	for c.used > c.budget {
		el := c.ll.Back()
		if el == nil {
			return
		}
		e := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.entries, e.key)
		c.used -= e.key.cost(len(e.body))
		c.viewCounters(e.key.view).evictions++
	}
}

// SetGeneration moves the cache to a new registry generation: entries
// from any other generation are invalidated, and flights from older
// generations will fail their Publish insert (their waiters still get
// correct bytes for the generation they acquired under). Invalidations
// are counted apart from budget evictions — they are correctness, not
// pressure.
func (c *ResultCache) SetGeneration(gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen == c.gen {
		return
	}
	c.gen = gen
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*cacheEntry)
		if e.key.gen != gen {
			c.ll.Remove(el)
			delete(c.entries, e.key)
			c.used -= e.key.cost(len(e.body))
			c.invalidated++
		}
	}
}

func (c *ResultCache) viewCounters(view string) *cacheViewCounters {
	vc, ok := c.views[view]
	if !ok {
		vc = &cacheViewCounters{}
		c.views[view] = vc
	}
	return vc
}

// CacheStats is the /v1/stats "cache" block.
type CacheStats struct {
	BudgetBytes int64  `json:"budget_bytes"`
	UsedBytes   int64  `json:"used_bytes"`
	Entries     int    `json:"entries"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Evictions   uint64 `json:"evictions"`
	Coalesced   uint64 `json:"coalesced"`
	Invalidated uint64 `json:"invalidated"`
}

// ViewCacheStats is the per-view slice of the cache counters, embedded in
// each /v1/stats view row when caching is on.
type ViewCacheStats struct {
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheEvictions uint64 `json:"cache_evictions"`
	CacheCoalesced uint64 `json:"cache_coalesced"`
}

// Stats snapshots the cache-wide counters.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{
		BudgetBytes: c.budget,
		UsedBytes:   c.used,
		Entries:     len(c.entries),
		Invalidated: c.invalidated,
	}
	for _, vc := range c.views {
		st.Hits += vc.hits
		st.Misses += vc.misses
		st.Evictions += vc.evictions
		st.Coalesced += vc.coalesced
	}
	return st
}

// ViewStats snapshots one view's cache counters.
func (c *ResultCache) ViewStats(view string) ViewCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	vc, ok := c.views[view]
	if !ok {
		return ViewCacheStats{}
	}
	return ViewCacheStats{
		CacheHits:      vc.hits,
		CacheMisses:    vc.misses,
		CacheEvictions: vc.evictions,
		CacheCoalesced: vc.coalesced,
	}
}

// CacheTee mirrors every byte written to the client into a bounded
// capture buffer, so a cache fill costs the live stream nothing but the
// copy. The capture invalidates itself — without disturbing the live
// response — when the body outgrows the cap or a non-200 status commits
// (error bodies must never be cached as results).
type CacheTee struct {
	http.ResponseWriter
	body []byte
	max  int64
	bad  bool
}

// NewCacheTee wraps w with a capture capped at max body bytes.
func NewCacheTee(w http.ResponseWriter, max int64) *CacheTee {
	return &CacheTee{ResponseWriter: w, max: max}
}

func (t *CacheTee) WriteHeader(status int) {
	if status != http.StatusOK {
		t.bad = true
		t.body = nil
	}
	t.ResponseWriter.WriteHeader(status)
}

func (t *CacheTee) Write(p []byte) (int, error) {
	if !t.bad {
		if int64(len(t.body))+int64(len(p)) > t.max {
			t.bad = true
			t.body = nil
		} else {
			t.body = append(t.body, p...)
		}
	}
	return t.ResponseWriter.Write(p)
}

// Flush forwards to the wrapped writer's Flusher. Declared explicitly so
// a *CacheTee satisfies the http.Flusher type assertions on the stream
// paths even though the embedded interface value may or may not.
func (t *CacheTee) Flush() {
	if f, ok := t.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Captured returns the captured body, or ok=false when the capture was
// invalidated (overflow or error status). An empty body with ok=true is
// a valid zero-tuple capture.
func (t *CacheTee) Captured() (body []byte, ok bool) {
	if t.bad {
		return nil, false
	}
	return t.body, true
}
