package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cqrep/internal/relation"
)

// QuerySource is anything that can answer access requests — a
// Representation, or any façade over one (the Maintained wrapper exposes a
// compatible snapshot via Rep).
type QuerySource interface {
	Query(vb relation.Tuple) Iterator
}

// defaultServerBuffer is the default per-request channel capacity: deep
// enough to decouple producer and consumer for typical result sizes, small
// enough that an undrained request exerts backpressure instead of
// buffering an unbounded result set. Override with WithServerBuffer.
const defaultServerBuffer = 256

// ServerOption customizes NewServer.
type ServerOption func(*serverConfig) error

type serverConfig struct {
	buffer     int
	flushBatch int
}

// WithServerBuffer sets the per-request iterator channel capacity. n
// trades memory per in-flight request against producer/consumer coupling:
// n tuples are buffered before the serving worker blocks on an undrained
// iterator. n must be at least 1; NewServer fails with ErrBadOption
// otherwise.
func WithServerBuffer(n int) ServerOption {
	return func(c *serverConfig) error {
		if n < 1 {
			return fmt.Errorf("%w: server buffer %d, need at least 1", ErrBadOption, n)
		}
		c.buffer = n
		return nil
	}
}

// WithFlushBatch makes serving workers hand results to iterators in
// pooled batches of up to n tuples instead of one channel operation per
// tuple. The very first tuple of every stream is still delivered alone —
// the time-to-first-answer delay the paper's guarantees are about does
// not grow with n — but steady-state enumeration amortizes channel
// synchronization and buffer allocation over n tuples, making the Server
// path (near-)zero-alloc per tuple. The worst mid-stream gap grows to n
// production steps; streams are byte-identical for every n. n must be at
// least 1 (the default: per-tuple delivery); NewServer fails with
// ErrBadOption otherwise.
func WithFlushBatch(n int) ServerOption {
	return func(c *serverConfig) error {
		if n < 1 {
			return fmt.Errorf("%w: flush batch %d, need at least 1", ErrBadOption, n)
		}
		c.flushBatch = n
		return nil
	}
}

// Server is a batching front over a QuerySource: callers submit access
// requests from any goroutine and receive a per-request Iterator
// immediately, while a fixed pool of workers drains the underlying
// representation and streams tuples into the iterators. It exists to drive
// one compiled representation at hardware speed from many clients —
// submission never blocks, fan-out is bounded by the worker count, and
// per-request results arrive in enumeration order.
//
// Iterators returned by Submit/QueryBatch block in Next until their
// request is served; requests are served in submission order. Close aborts
// outstanding work: undrained iterators terminate early rather than hang.
// SubmitContext additionally ties one request to a context: when it is
// cancelled the request's iterator terminates and its serving worker
// abandons the enumeration.
type Server struct {
	src     QuerySource
	workers int
	buffer  int
	batch   int // flush batch: tuples per channel operation (>= 1)

	// pool recycles batch buffers between serving workers and iterators:
	// a worker fills a pooled buffer, the consuming iterator drains it and
	// puts it back, so steady-state enumeration allocates nothing per
	// tuple. Buffers are *[]relation.Tuple so Get/Put stay allocation-free.
	pool sync.Pool

	mu    sync.Mutex
	cond  *sync.Cond
	queue []*serverReq

	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once
	// closed is guarded by mu; it sits after once so the two sub-word
	// fields share one padding slot (184 → 176 bytes).
	closed bool

	requests atomic.Uint64
	tuples   atomic.Uint64
}

type serverReq struct {
	vb  relation.Tuple
	out chan *[]relation.Tuple
	// ctx is the submitting context; its Done channel (nil for
	// context.Background) gates the serve loop's aborts.
	ctx context.Context
	st  *streamErr // terminal-error slot shared with the iterator
}

// streamErr carries a result stream's terminal error from the serving
// worker to the consumer's iterator. The first error wins; later causes
// (e.g. a close racing a cancellation) are dropped, matching the contract
// that a stream ends for exactly one reason.
type streamErr struct{ p atomic.Pointer[error] }

func (s *streamErr) set(err error) {
	if err != nil {
		s.p.CompareAndSwap(nil, &err)
	}
}

func (s *streamErr) get() error {
	if p := s.p.Load(); p != nil {
		return *p
	}
	return nil
}

// errReporter is the optional terminal-error surface of an iterator: a
// source whose enumeration can fail mid-stream (e.g. a paged or remote
// snapshot backend) exposes the failure here after Next returns false.
type errReporter interface{ Err() error }

// IterErr returns the terminal error of a result stream, or nil when the
// iterator does not report one. For iterators returned by Server.Submit /
// SubmitContext it is meaningful once Next has returned false: nil means
// the enumeration completed; ErrClosed means the server was closed
// mid-stream; the submitting context's error means it was cancelled; any
// other error was surfaced by the underlying source mid-enumeration.
func IterErr(it Iterator) error {
	if r, ok := it.(errReporter); ok {
		return r.Err()
	}
	return nil
}

// NewServer starts a server over src with the given number of worker
// goroutines; workers <= 0 means runtime.GOMAXPROCS(0). Callers must Close
// the server when done. An invalid option (e.g. WithServerBuffer below 1)
// fails with an error wrapping ErrBadOption and starts nothing.
func NewServer(src QuerySource, workers int, opts ...ServerOption) (*Server, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cfg := serverConfig{buffer: defaultServerBuffer, flushBatch: 1}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	s := &Server{src: src, workers: workers, buffer: cfg.buffer, batch: cfg.flushBatch, quit: make(chan struct{})}
	s.pool.New = func() any {
		b := make([]relation.Tuple, 0, s.batch)
		return &b
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Submit enqueues one access request and returns its result stream. It
// never blocks: the queue is unbounded and serving happens on the worker
// pool. After Close, the returned iterator is immediately exhausted.
func (s *Server) Submit(vb relation.Tuple) Iterator {
	it, err := s.SubmitContext(context.Background(), vb)
	if err != nil { // closed: preserve the legacy exhausted-iterator contract
		out := make(chan *[]relation.Tuple)
		close(out)
		// The fabricated stream was never served; its terminal error says
		// so instead of posing as a complete empty enumeration.
		st := &streamErr{}
		st.set(err)
		return &chanIterator{ch: out, st: st}
	}
	return it
}

// SubmitContext enqueues one access request tied to ctx and returns its
// result stream. When ctx is cancelled the iterator terminates (Next
// returns false) and the serving worker abandons the enumeration instead
// of filling a buffer nobody drains. Submitting to a closed server fails
// with ErrClosed; a ctx that is already done fails with its error. A nil
// ctx means context.Background().
func (s *Server) SubmitContext(ctx context.Context, vb relation.Tuple) (Iterator, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The channel carries batches; its capacity is sized so the buffered
	// tuple count stays roughly WithServerBuffer regardless of the batch.
	capBatches := s.buffer / s.batch
	if capBatches < 1 {
		capBatches = 1
	}
	out := make(chan *[]relation.Tuple, capBatches)
	st := &streamErr{}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.queue = append(s.queue, &serverReq{vb: vb.Clone(), out: out, ctx: ctx, st: st})
	s.requests.Add(1)
	s.mu.Unlock()
	s.cond.Signal()
	return &chanIterator{ch: out, ctx: ctx, st: st, pool: &s.pool}, nil
}

// Binder is the optional named-binding surface of a QuerySource: sources
// that know their view's bound-variable order (Representation does) resolve
// name→value maps into positional valuations for SubmitArgs.
type Binder interface {
	Bind(args map[string]relation.Value) (relation.Tuple, error)
}

// SubmitArgs is SubmitContext with the binding given by bound-variable
// name instead of position — the submission path of network fronts, whose
// clients send name→value maps rather than positional tuples. A source
// that cannot resolve names, or a valuation that does not match the view's
// bound variables, fails with an error wrapping ErrBadBinding.
func (s *Server) SubmitArgs(ctx context.Context, args map[string]relation.Value) (Iterator, error) {
	b, ok := s.src.(Binder)
	if !ok {
		return nil, fmt.Errorf("%w: query source cannot resolve named bindings", ErrBadBinding)
	}
	vb, err := b.Bind(args)
	if err != nil {
		return nil, err
	}
	return s.SubmitContext(ctx, vb)
}

// QueryBatch submits every valuation and returns the per-request iterators
// in matching order. Up to the server's worker count of requests are
// evaluated concurrently. Requests are served FIFO with bounded
// per-request buffers, so consumers should drain the iterators roughly in
// submission order: leaving an early iterator undrained while its result
// set exceeds the buffer blocks the worker serving it (backpressure), and
// with all workers blocked that way later requests wait until the early
// ones drain or the server closes.
func (s *Server) QueryBatch(vbs []relation.Tuple) []Iterator {
	out := make([]Iterator, len(vbs))
	for i, vb := range vbs {
		out[i] = s.Submit(vb)
	}
	return out
}

// worker pops requests in FIFO order and serves them until the server
// closes and the queue drains.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		req := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		s.serve(req)
	}
}

// serve drains one request into its channel, aborting on Close or on the
// request's own context so that a consumer that stopped reading cannot
// wedge the worker forever. Abort conditions are re-checked with priority
// before every send: a blocking select alone would pick randomly between a
// ready buffer slot and a closed done channel, letting a cancelled request
// keep filling its buffer nondeterministically.
//
// Tuples travel in pooled batches of up to s.batch (see WithFlushBatch).
// The first tuple always ships alone, so batching never defers the
// time-to-first-answer delay; a partial batch is flushed when the
// enumeration ends.
func (s *Server) serve(req *serverReq) {
	defer close(req.out)
	if s.aborted(req) {
		req.st.set(s.abortErr(req))
		return
	}
	it := s.src.Query(req.vb)
	bp := s.pool.Get().(*[]relation.Tuple)
	batch := (*bp)[:0]
	// send ships the accumulated batch; false means the stream aborted
	// (the terminal error is already recorded).
	send := func() bool {
		*bp = batch
		select {
		case req.out <- bp:
			s.tuples.Add(uint64(len(batch)))
			bp = s.pool.Get().(*[]relation.Tuple)
			batch = (*bp)[:0]
			return true
		case <-s.quit:
			req.st.set(ErrClosed)
			return false
		case <-req.ctx.Done(): // nil for Background: never ready
			req.st.set(req.ctx.Err())
			return false
		}
	}
	limit := 1 // first flush carries one tuple: first-answer delay first
	for {
		t, ok := it.Next()
		if !ok {
			// A stream that ends because the source failed mid-enumeration
			// must say so: silently truncated results are indistinguishable
			// from complete ones. Sources surface the failure through the
			// optional Err method (see IterErr).
			if len(batch) > 0 && !send() {
				return
			}
			req.st.set(IterErr(it))
			return
		}
		if s.aborted(req) {
			req.st.set(s.abortErr(req))
			return
		}
		batch = append(batch, t)
		if len(batch) >= limit {
			if !send() {
				return
			}
			limit = s.batch
		}
	}
}

// abortErr names the reason aborted fired: the request's own context error
// when it is done, ErrClosed otherwise (the server is quitting).
func (s *Server) abortErr(req *serverReq) error {
	if req.ctx != nil {
		if err := req.ctx.Err(); err != nil {
			return err
		}
	}
	return ErrClosed
}

// aborted reports, without blocking, whether the server is closing or the
// request's context is done.
func (s *Server) aborted(req *serverReq) bool {
	select {
	case <-s.quit:
		return true
	default:
	}
	if done := req.ctx.Done(); done != nil {
		select {
		case <-done:
			return true
		default:
		}
	}
	return false
}

// Closed reports whether Close has begun. A false result is advisory
// only: a concurrent Close may land immediately after.
func (s *Server) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close stops accepting requests, aborts in-flight enumerations, and waits
// for the workers to exit. Iterators for unserved requests terminate empty.
// Close is idempotent.
func (s *Server) Close() {
	s.once.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		close(s.quit)
		s.cond.Broadcast()
		s.wg.Wait()
	})
}

// ServerStats counts the server's lifetime traffic.
type ServerStats struct {
	Workers  int
	Buffer   int
	Requests uint64
	Tuples   uint64
}

// Stats reports the traffic counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{Workers: s.workers, Buffer: s.buffer, Requests: s.requests.Load(), Tuples: s.tuples.Load()}
}

// chanIterator adapts a batched result channel to the Iterator interface.
// Workers ship pooled batches (see WithFlushBatch); the iterator drains one
// batch locally between channel receives and recycles spent buffers into
// the shared pool. When the submitting context is cancelled, Next stops
// early instead of draining whatever was already buffered.
type chanIterator struct {
	ch    <-chan *[]relation.Tuple
	cur   *[]relation.Tuple // batch currently being drained; nil between batches
	idx   int               // next position in cur
	pool  *sync.Pool        // recycles spent batches; nil for fabricated streams
	ctx   context.Context   // nil for the legacy contextless path
	st    *streamErr        // terminal error set by the serving worker; may be nil
	ended bool              // the result channel closed (worker finished or aborted)
}

// Err returns the stream's terminal error (see IterErr). It is meaningful
// once Next has returned false; while the stream is live it returns
// whatever cause has already been recorded (usually nil).
func (it *chanIterator) Err() error {
	// Once the channel has closed, the worker's verdict (recorded before
	// the close, so visible here) is authoritative: a cleanly completed
	// stream stays error-free even if the caller cancels its context
	// afterwards.
	if it.ended {
		if it.st == nil {
			return nil
		}
		return it.st.get()
	}
	// A consumer-side cancellation can observe Next() == false before the
	// serving worker notices the done channel, so the context error is
	// consulted directly rather than waiting for the worker to record it.
	if it.st != nil {
		if err := it.st.get(); err != nil {
			return err
		}
	}
	if it.ctx != nil {
		return it.ctx.Err()
	}
	return nil
}

// Next blocks until the serving worker produces the next tuple, returning
// false when the request's enumeration is complete (or was aborted by
// Close or context cancellation). Cancellation is checked with priority:
// once the context is done, Next returns false even when tuples are still
// buffered — a plain two-way select would pick between the ready channel
// and the closed done channel at random, yielding a nondeterministic
// number of post-cancellation tuples.
func (it *chanIterator) Next() (relation.Tuple, bool) {
	var done <-chan struct{}
	if it.ctx != nil {
		done = it.ctx.Done() // nil for Background: the selects degenerate to receives
	}
	if done != nil {
		select {
		case <-done:
			return nil, false
		default:
		}
	}
	if it.cur != nil {
		if b := *it.cur; it.idx < len(b) {
			t := b[it.idx]
			it.idx++
			return t, true
		}
		it.recycle()
	}
	select {
	case bp, ok := <-it.ch:
		if !ok {
			it.ended = true
			return nil, false
		}
		it.cur, it.idx = bp, 1
		return (*bp)[0], true
	case <-done:
		return nil, false
	}
}

// recycle returns the drained batch to the shared pool, dropping the tuple
// references first so the pool does not pin result memory between requests.
func (it *chanIterator) recycle() {
	bp := it.cur
	it.cur = nil
	if it.pool == nil {
		return
	}
	clear(*bp)
	it.pool.Put(bp)
}
