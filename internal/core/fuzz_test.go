package core

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"cqrep/internal/cq"
	"cqrep/internal/relation"
	"cqrep/internal/workload"
)

// FuzzReadRepresentation hardens the snapshot decoder against corrupt,
// truncated, and adversarial inputs: whatever bytes arrive,
// ReadRepresentation must return a typed error or a representation that
// actually serves queries — never panic, and never size an allocation
// from an attacker-controlled count (the Decoder validates every count
// against the bytes remaining; this target proves it end to end).
//
// The corpus seeds with the checked-in v1 fixtures and freshly encoded
// v2 frames (single-backend and sharded), so mutations explore the
// interesting neighborhoods of both supported format versions.
func FuzzReadRepresentation(f *testing.F) {
	// v1 fixtures (pre-sharding format) from testdata.
	for _, name := range []string{"v1-primitive.cqs", "v1-decomposition.cqs", "v1-materialized.cqs"} {
		if data, err := os.ReadFile(filepath.Join("testdata", name)); err == nil {
			f.Add(data)
		}
	}
	// v2 frames across the persistable strategy menu, sharded included.
	view := cq.MustParse("V[bfb](x, y, z) :- R(x, y), R(y, z), R(z, x)")
	db := workload.TriangleDB(5, 12, 40)
	for _, opts := range [][]Option{
		{WithStrategy(PrimitiveStrategy), WithTau(2)},
		{WithStrategy(DecompositionStrategy)},
		{WithStrategy(MaterializedStrategy)},
		{WithStrategy(DirectStrategy)},
		{WithStrategy(PrimitiveStrategy), WithTau(2), WithShards(2)},
	} {
		rep, err := Build(view, db, opts...)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := rep.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Degenerate non-snapshots.
	f.Add([]byte{})
	f.Add([]byte("CQREPS"))
	f.Add([]byte("not a snapshot at all........."))

	f.Fuzz(func(t *testing.T, data []byte) {
		// The format frames its payload with a length field; cap the input
		// so the fuzzer spends its budget on structure, not on I/O volume.
		if len(data) > 1<<20 {
			return
		}
		// Three decoding angles per input: the bytes as a whole frame, and
		// the bytes as a *payload* wrapped in a correctly-checksummed v1
		// and v2 frame. The wrapped paths matter most: without them the
		// CRC-32 gate rejects nearly every mutation before the payload
		// decoders (view, database, per-strategy structures) see a byte.
		tryDecode(t, data)
		tryDecode(t, framePayload(1, stripFrame(data)))
		tryDecode(t, framePayload(2, stripFrame(data)))
	})
}

// stripFrame unwraps a whole snapshot frame back to its payload so seeds
// (which are valid frames) explore payload space; non-frames pass through
// as raw payload bytes.
func stripFrame(data []byte) []byte {
	const hdr = len(snapshotMagic) + 2 + 8
	if len(data) >= hdr+4 && string(data[:len(snapshotMagic)]) == snapshotMagic {
		return data[hdr : len(data)-4]
	}
	return data
}

// framePayload wraps payload bytes in a syntactically valid snapshot
// frame: right magic, the given version, true length, matching CRC.
func framePayload(version uint16, payload []byte) []byte {
	var buf bytes.Buffer
	buf.WriteString(snapshotMagic)
	buf.WriteByte(byte(version >> 8))
	buf.WriteByte(byte(version))
	var lenb [8]byte
	binary.BigEndian.PutUint64(lenb[:], uint64(len(payload)))
	buf.Write(lenb[:])
	buf.Write(payload)
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
	buf.Write(sum[:])
	return buf.Bytes()
}

// tryDecode runs one decode attempt and, on claimed success, proves the
// representation is actually servable and re-encodable.
func tryDecode(t *testing.T, data []byte) {
	rep, err := ReadRepresentation(bytes.NewReader(data))
	if err != nil {
		return
	}
	vb := make(relation.Tuple, len(rep.BoundNames()))
	it := rep.Query(vb)
	for i := 0; i < 64; i++ {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	rep.Exists(vb)
	// WriteTo over a decoded representation is the reload path of a
	// serving process; it must survive too.
	if _, err := rep.WriteTo(&bytes.Buffer{}); err != nil {
		t.Fatalf("decoded representation does not re-encode: %v", err)
	}
}
