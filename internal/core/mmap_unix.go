//go:build unix

package core

import (
	"fmt"
	"os"
	"runtime"
	"syscall"
)

// mmapFile maps f read-only and returns a holder whose finalizer unmaps
// it. The mapping is shared (no copy, no swap pressure): pages fault in
// from the page cache as lazy frames decode, which is what makes the mmap
// load path O(file-open) until first touch.
func mmapFile(f *os.File) (*mmapRef, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size == 0 {
		return &mmapRef{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("snapshot too large to map (%d bytes)", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmap: %w", err)
	}
	ref := &mmapRef{data: data, mapped: true}
	// Unmap when the last lazy frame drops its reference (materialized
	// frames copy what they keep, so nothing aliases the mapping by then).
	runtime.SetFinalizer(ref, (*mmapRef).unmap)
	return ref, nil
}

func (m *mmapRef) unmap() {
	if m.mapped {
		m.mapped = false
		syscall.Munmap(m.data)
		m.data = nil
	}
}
