package core

import (
	"fmt"
	"time"

	"cqrep/internal/cq"
	"cqrep/internal/relation"
)

// delta.go implements structure-aware delta maintenance — the backend
// half of ROADMAP item 2. Instead of recompiling a whole representation
// (or a whole dirty shard) on every churn budget breach, backends that can
// apply an *output delta* in place do so on a copy-on-write clone:
//
//   - The compiled view is always full (Build extends it), so every output
//     tuple is one complete variable assignment with a unique derivation:
//     substituting the output into an atom names the exact base tuple that
//     atom consumed. There is no multiplicity to count — an output leaves
//     iff one of its atom tuples was deleted, and enters iff it newly
//     joins through an inserted one.
//   - The net change of a batch against the pre-batch database (only
//     tuples whose presence actually flips; the last operation per tuple
//     wins) therefore determines the output delta exactly: removals seed a
//     backtracking join from each net-deleted tuple over the OLD database,
//     additions seed from each net-inserted tuple over the NEW database.
//     The two sets are disjoint by construction — a removal's witness uses
//     a tuple absent afterwards, an addition's a tuple absent before.
//
// Backends opt in through the deltaApplier capability; anything else (the
// Theorem-2 decomposition, direct evaluation) falls back to the existing
// full/dirty-shard recompile in Representation.rebuildFor. Correctness is
// gated differentially: difftest churn scripts demand the delta-applied
// representation enumerate byte-for-byte what a fresh compile produces.

// deltaApplier is the optional backend capability: applyDelta returns a
// backend equivalent to freshly compiling shell's view over shell's
// database, built by editing this backend copy-on-write (the receiver
// must remain fully usable — queries keep draining it while the swap is
// prepared). ok=false means this particular delta is out of the backend's
// reach (fall back to a full recompile); the implementation fills
// shell.stats the way its backendSpec.build would.
type deltaApplier interface {
	applyDelta(shell *Representation, d *outputDelta) (be backend, ok bool, err error)
	// needsOutputs reports whether applyDelta consumes the output delta;
	// backends keyed only on the base indexes (AllBound) skip the seeded
	// join entirely.
	needsOutputs() bool
}

// outputChange is one output-level edit in normalized head orders: the
// bound valuation and the free tuple of an output that enters or leaves.
type outputChange struct {
	vb   relation.Tuple
	free relation.Tuple
}

// outputDelta is the net effect of a change batch on the view output.
type outputDelta struct {
	adds, dels []outputChange
}

// changeKey identifies one (relation, tuple) pair; the encoded tuple is
// fixed-width per relation, so the pair is unambiguous.
type changeKey struct {
	rel string
	enc string
}

// netChanges canonicalizes a change batch against the pre-batch database:
// the last operation per tuple wins, and only tuples whose presence
// actually flips survive — an insert of a present tuple and a delete of an
// absent one are set-semantics no-ops, and a tuple churned in and out
// within the batch cancels.
func netChanges(old *relation.Database, batch []change) (ins, del map[string][]relation.Tuple, err error) {
	final := make(map[changeKey]change, len(batch))
	for _, c := range batch {
		final[changeKey{rel: c.rel, enc: string(c.tuple.AppendEncode(nil))}] = c
	}
	ins = make(map[string][]relation.Tuple)
	del = make(map[string][]relation.Tuple)
	for _, c := range final {
		r, err := old.Relation(c.rel)
		if err != nil {
			return nil, nil, err
		}
		before := r.Contains(c.tuple)
		after := !c.delete
		switch {
		case !before && after:
			ins[c.rel] = append(ins[c.rel], c.tuple)
		case before && !after:
			del[c.rel] = append(del[c.rel], c.tuple)
		}
	}
	return ins, del, nil
}

// viewEval is a seeded backtracking evaluator over a full view: given one
// changed base tuple, it enumerates every complete variable assignment
// that uses the tuple at some atom and satisfies every other atom against
// db. It works directly on the surface view and the database — not the
// compiled join.Instance — because it must run against two databases (the
// pre- and post-batch states), only one of which has compiled indexes.
type viewEval struct {
	view  *cq.View
	db    *relation.Database
	nvars int
	atoms []evalAtom
}

// evalAtom is one body atom with variables resolved to ids: vars[p] is the
// variable id at position p, or -1 where consts[p] pins a constant.
type evalAtom struct {
	name   string
	rel    *relation.Relation
	vars   []int
	consts []relation.Value
}

// newViewEval resolves the full view's atoms against db. nv supplies the
// variable-id space; it may have been normalized against a different
// database state (the orders depend only on the view).
func newViewEval(view *cq.View, nv *cq.NormalizedView, db *relation.Database) (*viewEval, error) {
	ev := &viewEval{view: view, db: db, nvars: len(nv.Vars)}
	for _, a := range view.Body {
		rel, err := db.Relation(a.Relation)
		if err != nil {
			return nil, err
		}
		ea := evalAtom{name: a.Relation, rel: rel, vars: make([]int, len(a.Terms)), consts: make([]relation.Value, len(a.Terms))}
		for p, t := range a.Terms {
			if t.IsConst {
				ea.vars[p] = -1
				ea.consts[p] = t.Const
			} else {
				id := nv.VarID(t.Var)
				if id < 0 {
					return nil, fmt.Errorf("core: delta: unknown variable %q", t.Var)
				}
				ea.vars[p] = id
			}
		}
		ev.atoms = append(ev.atoms, ea)
	}
	return ev, nil
}

// seeded calls emit for every complete assignment (indexed by variable id)
// that places tup at some occurrence of relation rel and satisfies every
// body atom against ev.db. tup must be present in ev.db — the net-change
// canonicalization guarantees it for both seeding directions.
func (ev *viewEval) seeded(rel string, tup relation.Tuple, emit func(asg []relation.Value)) {
	asg := make([]relation.Value, ev.nvars)
	set := make([]bool, ev.nvars)
	rest := make([]int, 0, len(ev.atoms))
	for seed := range ev.atoms {
		ea := &ev.atoms[seed]
		if ea.name != rel {
			continue
		}
		// Unify tup with the seed atom: constants must match, repeated
		// variables must agree.
		ok := true
		b := bound{asg: asg, set: set}
		for p, vid := range ea.vars {
			if vid < 0 {
				if ea.consts[p] != tup[p] {
					ok = false
					break
				}
				continue
			}
			if !b.bind(vid, tup[p]) {
				ok = false
				break
			}
		}
		if ok {
			rest = rest[:0]
			for j := range ev.atoms {
				if j != seed {
					rest = append(rest, j)
				}
			}
			ev.extend(asg, set, rest, emit)
		}
		b.undo()
	}
}

// bound tracks variable bindings made by one unification or row match so
// they can be undone on backtrack.
type bound struct {
	asg    []relation.Value
	set    []bool
	undoed []int
}

func (b *bound) bind(vid int, v relation.Value) bool {
	if b.set[vid] {
		return b.asg[vid] == v
	}
	b.asg[vid] = v
	b.set[vid] = true
	b.undoed = append(b.undoed, vid)
	return true
}

func (b *bound) undo() {
	for _, vid := range b.undoed {
		b.set[vid] = false
	}
	b.undoed = b.undoed[:0]
}

// extend completes a partial assignment over the remaining atoms by
// backtracking: the most constrained atom (fewest unbound variables,
// smallest relation on ties) goes first; fully bound atoms are a single
// membership probe, others scan their relation's rows.
func (ev *viewEval) extend(asg []relation.Value, set []bool, rest []int, emit func([]relation.Value)) {
	if len(rest) == 0 {
		emit(asg)
		return
	}
	best, bestUnbound := -1, -1
	for i, j := range rest {
		unbound := 0
		for _, vid := range ev.atoms[j].vars {
			if vid >= 0 && !set[vid] {
				unbound++
			}
		}
		if best < 0 || unbound < bestUnbound ||
			(unbound == bestUnbound && ev.atoms[j].rel.Len() < ev.atoms[rest[best]].rel.Len()) {
			best, bestUnbound = i, unbound
		}
		if unbound == 0 {
			break
		}
	}
	j := rest[best]
	ea := &ev.atoms[j]
	next := make([]int, 0, len(rest)-1)
	next = append(next, rest[:best]...)
	next = append(next, rest[best+1:]...)

	if bestUnbound == 0 {
		probe := make(relation.Tuple, len(ea.vars))
		for p, vid := range ea.vars {
			if vid < 0 {
				probe[p] = ea.consts[p]
			} else {
				probe[p] = asg[vid]
			}
		}
		if ea.rel.Contains(probe) {
			ev.extend(asg, set, next, emit)
		}
		return
	}
	b := bound{asg: asg, set: set}
	for _, row := range ea.rel.Tuples() {
		ok := true
		for p, vid := range ea.vars {
			if vid < 0 {
				if ea.consts[p] != row[p] {
					ok = false
					break
				}
				continue
			}
			if !b.bind(vid, row[p]) {
				ok = false
				break
			}
		}
		if ok {
			ev.extend(asg, set, next, emit)
		}
		b.undo()
	}
}

// outputDeltaFor computes the exact output delta of a change batch:
// removals seeded from net-deleted tuples over the old database (r.db),
// additions from net-inserted ones over newDB. Outputs reachable through
// several changed tuples are deduplicated.
func (r *Representation) outputDeltaFor(newDB *relation.Database, batch []change) (*outputDelta, error) {
	ins, del, err := netChanges(r.db, batch)
	if err != nil {
		return nil, err
	}
	d := &outputDelta{}
	collect := func(ev *viewEval, nets map[string][]relation.Tuple, dst *[]outputChange) {
		seen := make(map[string]bool)
		for rel, tuples := range nets {
			for _, t := range tuples {
				ev.seeded(rel, t, func(asg []relation.Value) {
					oc := outputChange{
						vb:   projectIDs(asg, r.nv.Bound),
						free: projectIDs(asg, r.nv.Free),
					}
					key := string(oc.free.AppendEncode(oc.vb.AppendEncode(nil)))
					if !seen[key] {
						seen[key] = true
						*dst = append(*dst, oc)
					}
				})
			}
		}
	}
	if len(del) > 0 {
		ev, err := newViewEval(r.view, r.nv, r.db)
		if err != nil {
			return nil, err
		}
		collect(ev, del, &d.dels)
	}
	if len(ins) > 0 {
		ev, err := newViewEval(r.view, r.nv, newDB)
		if err != nil {
			return nil, err
		}
		collect(ev, ins, &d.adds)
	}
	return d, nil
}

// projectIDs projects an assignment onto the given variable ids.
func projectIDs(asg []relation.Value, ids []int) relation.Tuple {
	out := make(relation.Tuple, len(ids))
	for i, id := range ids {
		out[i] = asg[id]
	}
	return out
}

// tryDelta attempts the delta-application path for an unsharded
// representation: probe the backend capability, compute the output delta,
// and install the copy-on-write backend into a fresh shell over newDB.
// Any failure (unsupported backend, delta out of reach, evaluation error)
// reports false and the caller falls back to the full recompile — the
// delta path is an optimization, never a correctness dependency.
func (r *Representation) tryDelta(newDB *relation.Database, batch []change, cfg *config) (*Representation, bool) {
	if cfg.noDelta || r.lazy != nil {
		return nil, false
	}
	da, ok := r.be.(deltaApplier)
	if !ok {
		return nil, false
	}
	start := time.Now()
	shell, err := newShell(r.orig, newDB)
	if err != nil {
		return nil, false
	}
	var d *outputDelta
	if da.needsOutputs() {
		if d, err = r.outputDeltaFor(newDB, batch); err != nil {
			return nil, false
		}
	}
	shell.strategy = r.strategy
	shell.stats.Strategy = r.strategy
	shell.stats.Shards = 1
	be, ok, err := da.applyDelta(shell, d)
	if !ok || err != nil {
		return nil, false
	}
	shell.be = be
	shell.stats.BuildTime = time.Since(start)
	return shell, true
}
