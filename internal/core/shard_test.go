package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"testing"

	"cqrep/internal/cq"
	"cqrep/internal/relation"
	"cqrep/internal/workload"
)

// shard_test.go verifies the sharded composite backend: partitioned
// enumeration must be byte-for-byte identical to the unsharded
// representation (routing and merge paths), snapshots must round-trip per
// shard, and Maintained must recompile only dirty shards.

// shardCases are the E1 triangle and E6 path shapes the acceptance
// criteria name, plus a merge-enumeration view with no bound variables.
func shardCases(t *testing.T) []struct {
	name  string
	view  *cq.View
	db    *relation.Database
	opts  []Option
	nVbs  int
	boolQ bool
} {
	t.Helper()
	triDB := workload.TriangleDB(7, 40, 420)
	pathDB := workload.PathDB(7, 4, 260, 18)
	return []struct {
		name  string
		view  *cq.View
		db    *relation.Database
		opts  []Option
		nVbs  int
		boolQ bool
	}{
		{
			name: "E1 triangle primitive",
			view: cq.MustParse("V[bfb](x, y, z) :- R(x, y), R(y, z), R(z, x)"),
			db:   triDB,
			opts: []Option{WithStrategy(PrimitiveStrategy), WithTau(4)},
			nVbs: 40,
		},
		{
			name: "E1 triangle decomposition",
			view: cq.MustParse("V[bfb](x, y, z) :- R(x, y), R(y, z), R(z, x)"),
			db:   triDB,
			opts: []Option{WithStrategy(DecompositionStrategy)},
			nVbs: 40,
		},
		{
			name: "E1 triangle materialized",
			view: cq.MustParse("V[bfb](x, y, z) :- R(x, y), R(y, z), R(z, x)"),
			db:   triDB,
			opts: []Option{WithStrategy(MaterializedStrategy)},
			nVbs: 40,
		},
		{
			name: "E6 path primitive",
			view: workload.PathView(4),
			db:   pathDB,
			opts: []Option{WithStrategy(PrimitiveStrategy), WithTau(6)},
			nVbs: 40,
		},
		{
			name: "E6 path decomposition",
			view: workload.PathView(4),
			db:   pathDB,
			opts: []Option{WithStrategy(DecompositionStrategy)},
			nVbs: 40,
		},
		{
			name: "merge enumeration decomposition (no bound variables)",
			view: cq.MustParse("P(x1, x2, x3) :- R1(x1, x2), R2(x2, x3)"),
			db:   workload.PathDB(11, 2, 300, 20),
			opts: []Option{WithStrategy(DecompositionStrategy)},
			nVbs: 1,
		},
		{
			name: "merge enumeration primitive (no bound variables)",
			view: cq.MustParse("P(x1, x2, x3) :- R1(x1, x2), R2(x2, x3)"),
			db:   workload.PathDB(11, 2, 300, 20),
			opts: []Option{WithStrategy(PrimitiveStrategy), WithTau(4)},
			nVbs: 1,
		},
		{
			name: "merge enumeration materialized (no bound variables)",
			view: cq.MustParse("P(x1, x2, x3) :- R1(x1, x2), R2(x2, x3)"),
			db:   workload.PathDB(11, 2, 300, 20),
			opts: []Option{WithStrategy(MaterializedStrategy)},
			nVbs: 1,
		},
		{
			name:  "all-bound boolean routing",
			view:  cq.MustParse("V[bbb](x, y, z) :- R(x, y), R(y, z), R(z, x)"),
			db:    triDB,
			opts:  nil, // Auto resolves to AllBoundStrategy
			nVbs:  60,
			boolQ: true,
		},
	}
}

// sampleBindings draws deterministic valuations, mixing hits and misses.
func sampleBindings(r *Representation, n int, seed int64) []relation.Tuple {
	rng := rand.New(rand.NewSource(seed))
	nb := len(r.nv.Bound)
	out := make([]relation.Tuple, 0, n)
	for i := 0; i < n; i++ {
		vb := make(relation.Tuple, nb)
		for j := range vb {
			dom := r.inst.BoundDomains[j]
			if len(dom) == 0 || i%3 == 0 {
				vb[j] = relation.Value(rng.Intn(1000))
				continue
			}
			vb[j] = dom[rng.Intn(len(dom))]
		}
		out = append(out, vb)
	}
	return out
}

// enumBytes drains one request into its encoded byte stream.
func enumBytes(r *Representation, vb relation.Tuple) []byte {
	var buf bytes.Buffer
	for _, tu := range Drain(r.Query(vb)) {
		buf.Write(tu.AppendEncode(nil))
		buf.WriteByte('|')
	}
	return buf.Bytes()
}

// TestShardedEnumerationIdentical is the core acceptance property: for
// every shard count, the sharded representation enumerates byte-for-byte
// identically to the unsharded one, and Exists agrees.
func TestShardedEnumerationIdentical(t *testing.T) {
	for _, tc := range shardCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			base, err := Build(tc.view, tc.db, tc.opts...)
			if err != nil {
				t.Fatalf("unsharded build: %v", err)
			}
			vbs := sampleBindings(base, tc.nVbs, 99)
			for _, shards := range []int{2, 3, 5, 8} {
				sharded, err := Build(tc.view, tc.db, append(append([]Option{}, tc.opts...), WithShards(shards))...)
				if err != nil {
					t.Fatalf("%d shards: build: %v", shards, err)
				}
				if got := sharded.Stats().Shards; got != shards {
					t.Fatalf("Stats().Shards = %d, want %d", got, shards)
				}
				for _, vb := range vbs {
					want, got := enumBytes(base, vb), enumBytes(sharded, vb)
					if !bytes.Equal(want, got) {
						t.Fatalf("%d shards: enumeration for %v differs:\nwant %q\ngot  %q", shards, vb, want, got)
					}
					if base.Exists(vb) != sharded.Exists(vb) {
						t.Fatalf("%d shards: Exists(%v) disagrees", shards, vb)
					}
				}
			}
		})
	}
}

// TestShardedBuildDeterministic verifies the compiled composite is
// independent of the worker count — parallel shard builds must not leak
// scheduling into the structure or its enumerations. (Snapshot bytes are
// not compared: frames embed the measured wall-clock build time.)
func TestShardedBuildDeterministic(t *testing.T) {
	view := cq.MustParse("V[bfb](x, y, z) :- R(x, y), R(y, z), R(z, x)")
	db := workload.TriangleDB(3, 30, 300)
	var base *Representation
	var vbs []relation.Tuple
	for _, workers := range []int{1, 2, 8} {
		rep, err := Build(view, db, WithStrategy(PrimitiveStrategy), WithTau(3), WithShards(4), WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if base == nil {
			base = rep
			vbs = sampleBindings(rep, 30, 77)
			continue
		}
		if got, want := rep.Stats().Entries, base.Stats().Entries; got != want {
			t.Fatalf("workers=%d: entries %d != %d", workers, got, want)
		}
		if got, want := rep.Stats().Bytes, base.Stats().Bytes; got != want {
			t.Fatalf("workers=%d: bytes %d != %d", workers, got, want)
		}
		for _, vb := range vbs {
			if !bytes.Equal(enumBytes(base, vb), enumBytes(rep, vb)) {
				t.Fatalf("workers=%d: enumeration for %v differs from workers=1", workers, vb)
			}
		}
	}
}

// TestShardedSnapshotRoundTrip saves a sharded representation and insists
// the loaded composite routes, merges, and enumerates identically.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	for _, tc := range shardCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Build(tc.view, tc.db, append(append([]Option{}, tc.opts...), WithShards(3))...)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			var buf bytes.Buffer
			if _, err := rep.WriteTo(&buf); err != nil {
				t.Fatalf("WriteTo: %v", err)
			}
			loaded, err := ReadRepresentation(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("ReadRepresentation: %v", err)
			}
			if loaded.Stats().Shards != 3 {
				t.Fatalf("loaded Stats().Shards = %d, want 3", loaded.Stats().Shards)
			}
			if loaded.Stats().Strategy != rep.Stats().Strategy {
				t.Fatalf("loaded strategy %v, want %v", loaded.Stats().Strategy, rep.Stats().Strategy)
			}
			for _, vb := range sampleBindings(rep, 25, 5) {
				if !bytes.Equal(enumBytes(rep, vb), enumBytes(loaded, vb)) {
					t.Fatalf("loaded sharded snapshot enumerates differently for %v", vb)
				}
			}
		})
	}
}

// TestMaintainedDirtyShardRebuild is the maintenance regression: churn
// confined to one shard must recompile only that shard — every clean
// shard's compiled sub-representation is reused pointer-identical.
func TestMaintainedDirtyShardRebuild(t *testing.T) {
	view := cq.MustParse("V[bfb](x, y, z) :- R(x, y), R(y, z), R(z, x)")
	db := workload.TriangleDB(5, 30, 320)
	const shards = 4
	m, err := NewMaintained(view, db, 0, WithStrategy(DecompositionStrategy), WithShards(shards))
	if err != nil {
		t.Fatalf("NewMaintained: %v", err)
	}
	// In the triangle, R also feeds the aliased replicated atom R(y, z), so
	// any R churn dirties every shard — the fallback full rebuild must stay
	// correct.
	t.Run("triangle churn dirties all shards (replicated alias)", func(t *testing.T) {
		if err := m.Insert("R", relation.Tuple{1001, 1002}); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if err := m.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		fresh, err := Build(view, m.rep.Load().db, WithStrategy(DecompositionStrategy))
		if err != nil {
			t.Fatalf("fresh build: %v", err)
		}
		for _, vb := range sampleBindings(fresh, 10, 21) {
			it, err := m.Query(vb)
			if err != nil {
				t.Fatalf("Query: %v", err)
			}
			var got bytes.Buffer
			for _, tu := range Drain(it) {
				got.Write(tu.AppendEncode(nil))
				got.WriteByte('|')
			}
			if !bytes.Equal(got.Bytes(), enumBytes(fresh, vb)) {
				t.Fatalf("post-rebuild answers diverge for %v", vb)
			}
		}
	})

	// The star view has the shard variable x in every atom, so churn lands
	// in exactly one shard per change.
	star := cq.MustParse("S[bff](x, y, z) :- A(x, y), B(x, z)")
	sdb := relation.NewDatabase()
	a := relation.NewRelation("A", 2)
	b := relation.NewRelation("B", 2)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 400; i++ {
		a.MustInsert(relation.Value(rng.Intn(60)), relation.Value(rng.Intn(500)))
		b.MustInsert(relation.Value(rng.Intn(60)), relation.Value(rng.Intn(500)))
	}
	sdb.Add(a)
	sdb.Add(b)
	sm, err := NewMaintained(star, sdb, 0, WithStrategy(DecompositionStrategy), WithShards(shards))
	if err != nil {
		t.Fatalf("NewMaintained(star): %v", err)
	}
	old := sm.Rep().be.(*shardedBackend)

	key := relation.Value(12345)
	dirtyShard := relation.ShardOf(key, shards)
	if err := sm.Insert("A", relation.Tuple{key, 1}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := sm.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	cur := sm.Rep().be.(*shardedBackend)
	for i := 0; i < shards; i++ {
		if i == dirtyShard {
			if cur.subs[i] == old.subs[i] {
				t.Fatalf("dirty shard %d was not recompiled", i)
			}
			continue
		}
		if cur.subs[i] != old.subs[i] {
			t.Fatalf("clean shard %d was recompiled (want pointer-identical reuse)", i)
		}
	}

	// And the maintained answers match a fresh unsharded compile.
	fresh, err := Build(star, sm.rep.Load().db, WithStrategy(DecompositionStrategy))
	if err != nil {
		t.Fatalf("fresh build: %v", err)
	}
	it, err := sm.Query(relation.Tuple{key})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	var got bytes.Buffer
	for _, tu := range Drain(it) {
		got.Write(tu.AppendEncode(nil))
	}
	if !bytes.Equal(got.Bytes(), enumBytes(fresh, relation.Tuple{key})) {
		t.Fatal("maintained sharded answers diverge from fresh unsharded compile")
	}

	// A second churn burst on a different key touches only its own shard.
	key2 := relation.Value(777)
	if relation.ShardOf(key2, shards) == dirtyShard {
		key2 = relation.Value(778)
	}
	old = cur
	if err := sm.Insert("B", relation.Tuple{key2, 2}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := sm.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	cur = sm.Rep().be.(*shardedBackend)
	recompiled := 0
	for i := 0; i < shards; i++ {
		if cur.subs[i] != old.subs[i] {
			recompiled++
		}
	}
	if recompiled != 1 {
		t.Fatalf("second burst recompiled %d shards, want exactly 1", recompiled)
	}
}

// TestSnapshotShardCountBounded pins the corrupt-count defense: a
// CRC-valid version-2 frame claiming an absurd shard count must fail with
// ErrBadSnapshot instead of sizing an allocation from attacker-controlled
// bytes.
func TestSnapshotShardCountBounded(t *testing.T) {
	view := cq.MustParse("V[bf](x, y) :- R(x, y)")
	db := relation.NewDatabase()
	r := relation.NewRelation("R", 2)
	r.MustInsert(1, 2)
	db.Add(r)

	var payload bytes.Buffer
	e := relation.NewEncoder(&payload)
	encodeView(e, view)
	e.Database(db)
	e.Uint(uint64(DirectStrategy))
	e.Int(0)        // build time
	e.Uint(1 << 40) // absurd shard count
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}

	var frame bytes.Buffer
	frame.WriteString(snapshotMagic)
	var hdr [10]byte
	binary.BigEndian.PutUint16(hdr[:2], snapshotVersion)
	binary.BigEndian.PutUint64(hdr[2:], uint64(payload.Len()))
	frame.Write(hdr[:])
	frame.Write(payload.Bytes())
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload.Bytes()))
	frame.Write(sum[:])

	_, err := ReadRepresentation(bytes.NewReader(frame.Bytes()))
	if !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("err = %v, want errors.Is(_, ErrBadSnapshot)", err)
	}
}

// TestShardOfStable pins the hash so snapshots written by one process
// route identically in another.
func TestShardOfStable(t *testing.T) {
	if relation.ShardOf(0, 1) != 0 || relation.ShardOf(12345, 1) != 0 {
		t.Fatal("single shard must own everything")
	}
	for _, n := range []int{2, 3, 8} {
		counts := make([]int, n)
		for v := relation.Value(0); v < 4000; v++ {
			s := relation.ShardOf(v, n)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", v, n, s)
			}
			counts[s]++
		}
		for s, c := range counts {
			if c < 4000/n/2 {
				t.Fatalf("shard %d of %d owns only %d of 4000 values — hash badly skewed", s, n, c)
			}
		}
	}
}
