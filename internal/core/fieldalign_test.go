package core

import (
	"testing"

	"cqrep/internal/structlayout"
)

// TestHotStructFieldAlignment pins the serving-path and snapshot structs
// at zero padding waste: the declared field order must cost no more bytes
// than the optimal ordering under gc layout rules. serverReq and
// chanIterator are allocated once per request, lazySnapshot once per
// mapped shard frame, so interleaving a small field in the wrong place
// here is a real per-request cost. Server and lazySnapshot were reordered
// to reach this (Server 184 → 176, lazySnapshot 88 → 80 on 64-bit).
func TestHotStructFieldAlignment(t *testing.T) {
	for name, v := range map[string]any{
		"serverReq":    serverReq{},
		"chanIterator": chanIterator{},
		"streamErr":    streamErr{},
		"Server":       Server{},
		"lazySnapshot": lazySnapshot{},
		"mmapRef":      mmapRef{},
	} {
		size, optimal := structlayout.Waste(v)
		if size > optimal {
			t.Errorf("%s: size %d > optimal %d — reorder fields to remove padding", name, size, optimal)
		}
	}
}
