package core

import (
	"math/rand"
	"sort"
	"testing"

	"cqrep/internal/cq"
	"cqrep/internal/decomp"
	"cqrep/internal/fractional"
	"cqrep/internal/relation"
	"cqrep/internal/workload"
)

func TestAutoStrategySelection(t *testing.T) {
	db := workload.TriangleDB(1, 40, 80)
	cases := []struct {
		view string
		opts []Option
		want Strategy
	}{
		{"V[bfb](x, y, z) :- R(x, y), R(y, z), R(z, x)", nil, DecompositionStrategy},
		{"V[bfb](x, y, z) :- R(x, y), R(y, z), R(z, x)", []Option{WithTau(4)}, PrimitiveStrategy},
		{"V[bfb](x, y, z) :- R(x, y), R(y, z), R(z, x)", []Option{WithSpaceBudget(100)}, PrimitiveStrategy},
		{"V[bbb](x, y, z) :- R(x, y), R(y, z), R(z, x)", nil, AllBoundStrategy},
	}
	for _, c := range cases {
		r, err := Build(cq.MustParse(c.view), db, c.opts...)
		if err != nil {
			t.Fatalf("%s: %v", c.view, err)
		}
		if r.Stats().Strategy != c.want {
			t.Errorf("%s: strategy %v, want %v", c.view, r.Stats().Strategy, c.want)
		}
	}
}

func TestAllStrategiesAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		view, db := workload.RandomFullView(rng, 2+rng.Intn(3), 1+rng.Intn(3), 4, 2+rng.Intn(12))
		strategies := []Option{
			WithStrategy(PrimitiveStrategy), WithTau(2),
		}
		reps := make([]*Representation, 0, 4)
		r1, err := Build(view, db, strategies...)
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, r1)
		r2, err := Build(view, db, WithStrategy(DecompositionStrategy))
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, r2)
		r3, err := Build(view, db, WithStrategy(MaterializedStrategy))
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, r3)
		r4, err := Build(view, db, WithStrategy(DirectStrategy))
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, r4)

		nb := len(r1.Normalized().Bound)
		for probe := 0; probe < 6; probe++ {
			vb := make(relation.Tuple, nb)
			for i := range vb {
				vb[i] = relation.Value(rng.Intn(4))
			}
			ref := Drain(reps[3].Query(vb)) // direct = ground truth
			sortTuples(ref)
			for k, rep := range reps[:3] {
				got := Drain(rep.Query(vb))
				sortTuples(got)
				if len(got) != len(ref) {
					t.Fatalf("trial %d strategy %d vb=%v: %d vs %d tuples", trial, k, vb, len(got), len(ref))
				}
				for i := range got {
					if !got[i].Equal(ref[i]) {
						t.Fatalf("trial %d strategy %d vb=%v tuple %d: %v vs %v", trial, k, vb, i, got[i], ref[i])
					}
				}
			}
		}
	}
}

func sortTuples(ts []relation.Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
}

func TestBudgetPlanners(t *testing.T) {
	db := workload.TriangleDB(3, 200, 900)
	view := cq.MustParse("V[bfb](x, y, z) :- R(x, y), R(y, z), R(z, x)")
	n := db.Size()

	// Space budget ~ |D| should plan τ ≈ √N (Example 1).
	rLinear, err := Build(view, db, WithSpaceBudget(float64(n)))
	if err != nil {
		t.Fatal(err)
	}
	st := rLinear.Stats()
	if st.Tau < 5 {
		t.Errorf("linear budget: τ = %v, expected √N territory", st.Tau)
	}

	// Huge space budget should plan constant delay.
	rBig, err := Build(view, db, WithSpaceBudget(1e12))
	if err != nil {
		t.Fatal(err)
	}
	if got := rBig.Stats().Tau; got > 1.5 {
		t.Errorf("huge budget: τ = %v, want ≈1", got)
	}

	// Delay budget 1 forces τ = 1.
	rFast, err := Build(view, db, WithDelayBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := rFast.Stats().Tau; got > 1.5 {
		t.Errorf("delay budget 1: τ = %v, want ≈1", got)
	}
}

func TestQueryArgsAndAccessors(t *testing.T) {
	db := workload.TriangleDB(5, 60, 140)
	view := cq.MustParse("V[bfb](x, y, z) :- R(x, y), R(y, z), R(z, x)")
	r, err := Build(view, db, WithTau(3))
	if err != nil {
		t.Fatal(err)
	}
	it, err := r.QueryArgs(map[string]relation.Value{"x": 1, "z": 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = Drain(it)
	if _, err := r.QueryArgs(map[string]relation.Value{"x": 1}); err == nil {
		t.Error("missing bound variable must fail")
	}
	if got := r.FreeNames(); len(got) != 1 || got[0] != "y" {
		t.Errorf("FreeNames = %v", got)
	}
	if got := r.BoundNames(); len(got) != 2 || got[0] != "x" || got[1] != "z" {
		t.Errorf("BoundNames = %v", got)
	}
	if r.View() == nil || r.Normalized() == nil || r.Instance() == nil {
		t.Error("accessors must be populated")
	}
}

func TestBooleanViewViaExtension(t *testing.T) {
	// ∆^b(x) = R(x,y), S(y,z), T(z,x): does node x lie on a triangle?
	db := relation.NewDatabase()
	r := relation.NewRelation("R", 2)
	s := relation.NewRelation("S", 2)
	tt := relation.NewRelation("T", 2)
	// Triangle 1-2-3 plus a dangling edge 7→8.
	r.MustInsert(1, 2)
	s.MustInsert(2, 3)
	tt.MustInsert(3, 1)
	r.MustInsert(7, 8)
	db.Add(r)
	db.Add(s)
	db.Add(tt)
	rep, err := Build(cq.MustParse("D[b](x) :- R(x, y), S(y, z), T(z, x)"), db)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Exists(relation.Tuple{1}) {
		t.Error("node 1 lies on a triangle")
	}
	if rep.Exists(relation.Tuple{7}) {
		t.Error("node 7 lies on no triangle")
	}
}

func TestExplicitDecompositionAndDelta(t *testing.T) {
	db := workload.PathDB(9, 6, 100, 10)
	view := workload.PathView(6)
	// PathView(6) binds x1, x7; variables are head-ordered so ids 0..6.
	dec := &decomp.Decomposition{
		Bags: [][]int{
			{0, 6},
			{0, 1, 5, 6},
			{1, 2, 4, 5},
			{2, 3, 4},
		},
		Parent: []int{-1, 0, 1, 2},
	}
	r, err := Build(view, db,
		WithStrategy(DecompositionStrategy),
		WithDecomposition(dec),
		WithDelta([]float64{0, 0.2, 0.2, 0.2}))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Build(view, db, WithStrategy(DirectStrategy))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for probe := 0; probe < 25; probe++ {
		vb := relation.Tuple{relation.Value(rng.Intn(10)), relation.Value(rng.Intn(10))}
		got := Drain(r.Query(vb))
		want := Drain(ref.Query(vb))
		sortTuples(got)
		sortTuples(want)
		if len(got) != len(want) {
			t.Fatalf("vb=%v: %d vs %d", vb, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("vb=%v tuple %d: %v vs %v", vb, i, got[i], want[i])
			}
		}
	}
	st := r.Stats()
	if st.Height < 0.59 || st.Height > 0.61 {
		t.Errorf("δ-height = %v, want 0.6", st.Height)
	}
}

func TestWithCoverOption(t *testing.T) {
	db := workload.StarDB(4, 2, 300, 40)
	view := workload.StarView(2)
	r, err := Build(view, db, WithCover(fractional.Cover{1, 1}), WithTau(5))
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats().Alpha != 2 {
		t.Errorf("star slack α = %v, want 2", r.Stats().Alpha)
	}
}

func TestBuildErrors(t *testing.T) {
	db := workload.TriangleDB(2, 20, 30)
	if _, err := Build(cq.MustParse("V[bf](x, y) :- Q(x, y)"), db); err == nil {
		t.Error("unknown relation must fail")
	}
	view := cq.MustParse("V[bfb](x, y, z) :- R(x, y), R(y, z), R(z, x)")
	if _, err := Build(view, db, WithStrategy(AllBoundStrategy)); err == nil {
		t.Error("AllBound on a view with free variables must fail")
	}
	if _, err := Build(view, db, WithStrategy(Strategy(99))); err == nil {
		t.Error("unknown strategy must fail")
	}
}
