//go:build !unix

package core

import (
	"io"
	"os"
)

// mmapFile on platforms without a usable mmap syscall falls back to
// reading the whole file into memory. Decoding is still deferred exactly
// as on unix — the startup cost is one sequential read instead of
// O(file-open), but no structure decodes before first touch.
func mmapFile(f *os.File) (*mmapRef, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	return &mmapRef{data: data}, nil
}
