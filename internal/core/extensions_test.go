package core

import (
	"math"
	"math/rand"
	"testing"

	"cqrep/internal/cq"
	"cqrep/internal/decomp"
	"cqrep/internal/relation"
	"cqrep/internal/workload"
)

// TestQueryDistinctProjection checks the Section-3.2 projection extension:
// the co-author view V^bf(x,y) projects the witnessing paper away and must
// yield each co-author once, across strategies.
func TestQueryDistinctProjection(t *testing.T) {
	db := workload.CoauthorDB(5, 40, 60, 400)
	view := cq.MustParse("V[bf](x, y) :- R(x, p), R(y, p)")
	for _, opts := range [][]Option{
		{WithStrategy(PrimitiveStrategy), WithTau(4)},
		{WithStrategy(DecompositionStrategy)},
		{WithStrategy(DirectStrategy)},
		{WithStrategy(MaterializedStrategy)},
	} {
		rep, err := Build(view, db, opts...)
		if err != nil {
			t.Fatal(err)
		}
		// Reference: distinct co-authors via the full view + manual dedup.
		for _, author := range []relation.Value{0, 1, 2, 7} {
			vb := relation.Tuple{author}
			want := make(map[relation.Value]bool)
			for _, full := range Drain(rep.Query(vb)) {
				want[full[0]] = true // full = (y, p)
			}
			got := Drain(rep.QueryDistinct(vb))
			if len(got) != len(want) {
				t.Fatalf("strategy %v author %v: %d distinct, want %d", rep.Stats().Strategy, author, len(got), len(want))
			}
			seen := make(map[relation.Value]bool)
			for _, g := range got {
				if len(g) != 1 {
					t.Fatalf("projected tuple %v has arity %d, want 1", g, len(g))
				}
				if seen[g[0]] {
					t.Fatalf("strategy %v: duplicate projected tuple %v", rep.Stats().Strategy, g)
				}
				seen[g[0]] = true
				if !want[g[0]] {
					t.Fatalf("strategy %v: unexpected co-author %v", rep.Stats().Strategy, g[0])
				}
			}
			if rep.CountDistinct(vb) != len(want) {
				t.Fatalf("CountDistinct mismatch")
			}
		}
	}
}

func TestQueryDistinctOnFullViewIsIdentity(t *testing.T) {
	db := workload.TriangleDB(3, 30, 70)
	view := cq.MustParse("V[bfb](x, y, z) :- R(x, y), R(y, z), R(z, x)")
	rep, err := Build(view, db, WithTau(2))
	if err != nil {
		t.Fatal(err)
	}
	r, _ := db.Relation("R")
	row := r.Row(0)
	vb := relation.Tuple{row[0], row[1]}
	a := Drain(rep.Query(vb))
	b := Drain(rep.QueryDistinct(vb))
	if len(a) != len(b) {
		t.Fatalf("full view distinct %d != plain %d", len(b), len(a))
	}
}

func TestCount(t *testing.T) {
	db := workload.TriangleDB(9, 25, 60)
	view := cq.MustParse("V[bfb](x, y, z) :- R(x, y), R(y, z), R(z, x)")
	rep, err := Build(view, db, WithTau(2))
	if err != nil {
		t.Fatal(err)
	}
	r, _ := db.Relation("R")
	for i := 0; i < 10 && i < r.Len(); i++ {
		row := r.Row(i)
		vb := relation.Tuple{row[0], row[1]}
		if got, want := rep.Count(vb), len(Drain(rep.Query(vb))); got != want {
			t.Errorf("Count(%v) = %d, want %d", vb, got, want)
		}
	}
}

// TestMaintainedInsertDelete validates snapshot semantics and the rebuild
// policy of the update extension.
func TestMaintainedInsertDelete(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.NewRelation("R", 2)
	for _, e := range [][2]relation.Value{{1, 2}, {2, 3}, {3, 1}, {2, 1}, {3, 2}, {1, 3}} {
		r.MustInsert(e[0], e[1])
	}
	db.Add(r)
	view := cq.MustParse("V[bfb](x, y, z) :- R(x, y), R(y, z), R(z, x)")
	m, err := NewMaintained(view, db, 10, WithTau(2)) // huge budget: manual flush only
	if err != nil {
		t.Fatal(err)
	}
	vb := relation.Tuple{1, 3} // mutual friends of 1 and 3 → y = 2
	it, err := m.Query(vb)
	if err != nil {
		t.Fatal(err)
	}
	if got := Drain(it); len(got) != 1 || got[0][0] != 2 {
		t.Fatalf("initial answer = %v, want [(2)]", got)
	}

	// Buffered inserts must not be visible until flush.
	for _, e := range [][2]relation.Value{{1, 4}, {4, 1}, {4, 3}, {3, 4}} {
		if err := m.Insert("R", relation.Tuple{e[0], e[1]}); err != nil {
			t.Fatal(err)
		}
	}
	it, _ = m.Query(vb)
	if got := Drain(it); len(got) != 1 {
		t.Fatalf("stale snapshot changed: %v", got)
	}
	if m.Pending() != 4 {
		t.Fatalf("pending = %d", m.Pending())
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	it, _ = m.Query(vb)
	if got := Drain(it); len(got) != 2 {
		t.Fatalf("after insert flush: %v, want y ∈ {2, 4}", got)
	}
	if m.Rebuilds() != 1 {
		t.Fatalf("rebuilds = %d", m.Rebuilds())
	}

	// Delete the new edges again.
	for _, e := range [][2]relation.Value{{1, 4}, {4, 1}, {4, 3}, {3, 4}} {
		if err := m.Delete("R", relation.Tuple{e[0], e[1]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	it, _ = m.Query(vb)
	if got := Drain(it); len(got) != 1 || got[0][0] != 2 {
		t.Fatalf("after delete flush: %v, want [(2)]", got)
	}
}

// TestMaintainedAutoRebuild checks the fraction-based policy triggers on
// query.
func TestMaintainedAutoRebuild(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.NewRelation("R", 2)
	for i := 0; i < 20; i++ {
		r.MustInsert(relation.Value(i), relation.Value(i+1))
	}
	db.Add(r)
	view := cq.MustParse("V[bf](x, y) :- R(x, y)")
	m, err := NewMaintained(view, db, 0.1, WithTau(1))
	if err != nil {
		t.Fatal(err)
	}
	// The budget is max(10% of 20, minChurnBatch): the floor governs on a
	// database this small, so the rebuild fires on the insert that pushes
	// pending past minChurnBatch; Quiesce waits for the swap so the test
	// observes it deterministically.
	n := minChurnBatch + 1
	for i := 0; i < n; i++ {
		if err := m.Insert("R", relation.Tuple{100, relation.Value(i)}); err != nil {
			t.Fatal(err)
		}
	}
	m.Quiesce()
	it, err := m.Query(relation.Tuple{100})
	if err != nil {
		t.Fatal(err)
	}
	if got := Drain(it); len(got) != n {
		t.Fatalf("auto rebuild missing inserts: %v", got)
	}
	if m.Rebuilds() != 1 || m.Pending() != 0 {
		t.Fatalf("rebuilds=%d pending=%d", m.Rebuilds(), m.Pending())
	}
	if err := m.Insert("S", relation.Tuple{1, 2}); err == nil {
		t.Error("unknown relation must fail")
	}
	if err := m.Insert("R", relation.Tuple{1}); err == nil {
		t.Error("arity mismatch must fail")
	}
}

// TestMaintainedRebuildFailure forces a rebuild to fail (a buffered tuple
// with a reserved sentinel value is rejected when the batch is applied)
// and checks that no update is lost: the batch stays buffered, queries
// keep serving the last good snapshot, the error surfaces exactly once
// through Flush, and a later valid Flush applies the survivors.
func TestMaintainedRebuildFailure(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.NewRelation("R", 2)
	for i := 0; i < 10; i++ {
		r.MustInsert(relation.Value(i), relation.Value(i+1))
	}
	db.Add(r)
	view := cq.MustParse("V[bf](x, y) :- R(x, y)")
	m, err := NewMaintained(view, db, 10, WithTau(1)) // manual flush only
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Insert("R", relation.Tuple{50, 51}); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert("R", relation.Tuple{relation.NegInf, 1}); err != nil {
		t.Fatal(err) // buffering does not validate sentinels; apply does
	}
	if err := m.Flush(); err == nil {
		t.Fatal("Flush must surface the failed rebuild")
	}
	if m.Pending() != 2 {
		t.Fatalf("failed rebuild dropped the batch: pending = %d, want 2", m.Pending())
	}
	// Queries still serve the last good snapshot, without error.
	it, err := m.Query(relation.Tuple{0})
	if err != nil {
		t.Fatal(err)
	}
	if got := Drain(it); len(got) != 1 || got[0][0] != 1 {
		t.Fatalf("query after failed rebuild = %v", got)
	}
	// Remove the poison pill; the surviving insert must apply.
	if !removePending(m, relation.Tuple{relation.NegInf, 1}) {
		t.Fatal("could not remove poison change")
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	it, _ = m.Query(relation.Tuple{50})
	if got := Drain(it); len(got) != 1 || got[0][0] != 51 {
		t.Fatalf("surviving insert lost: %v", got)
	}
}

// removePending drops one buffered change by tuple value — test-only
// surgery standing in for an application-level dead-letter policy.
func removePending(m *Maintained, tuple relation.Tuple) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, c := range m.pending {
		if c.tuple.Equal(tuple) {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			return true
		}
	}
	return false
}

// TestOptimizeDelta exercises the Section-6 decomposition planner: tighter
// space budgets must produce higher (slower) delay exponents.
func TestOptimizeDelta(t *testing.T) {
	db := workload.PathDB(3, 6, 300, 18)
	view := cq.MustParse("Q[bfffbbf](v1, v2, v3, v4, v5, v6, v7) :- " +
		"R1(v1, v2), R2(v2, v3), R3(v3, v4), R4(v4, v5), R5(v5, v6), R6(v6, v7)")
	nv, err := cq.Normalize(view, db)
	if err != nil {
		t.Fatal(err)
	}
	dec := &decomp.Decomposition{
		Bags:   [][]int{{0, 4, 5}, {0, 1, 3, 4}, {1, 2, 3}, {5, 6}},
		Parent: []int{-1, 0, 1, 0},
	}
	n := float64(db.Size())
	tight, err := decomp.OptimizeDelta(nv, dec, logf(n))
	if err != nil {
		t.Fatal(err)
	}
	loose, err := decomp.OptimizeDelta(nv, dec, 2.5*logf(n))
	if err != nil {
		t.Fatal(err)
	}
	if dec.DeltaHeight(tight) < dec.DeltaHeight(loose)-1e-9 {
		t.Errorf("tight budget height %v < loose %v", dec.DeltaHeight(tight), dec.DeltaHeight(loose))
	}
	// The planned assignment must build and answer correctly.
	s, err := decomp.Build(nv, dec, tight)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	ref, err := Build(view, db, WithStrategy(DirectStrategy))
	if err != nil {
		t.Fatal(err)
	}
	for probe := 0; probe < 10; probe++ {
		vb := relation.Tuple{
			relation.Value(rng.Intn(18)),
			relation.Value(rng.Intn(18)),
			relation.Value(rng.Intn(18)),
		}
		got := s.Query(vb).Drain()
		want := Drain(ref.Query(vb))
		if len(got) != len(want) {
			t.Fatalf("vb=%v: planned structure %d vs direct %d", vb, len(got), len(want))
		}
	}
}

func logf(x float64) float64 { return math.Log(x) }

// TestDecompositionBudgets: the Section-6 planner wires into the
// decomposition strategy — tighter space budgets yield taller (slower)
// delay assignments, and answers stay correct.
func TestDecompositionBudgets(t *testing.T) {
	db := workload.PathDB(13, 6, 250, 16)
	view := cq.MustParse("Q[bfffbbf](v1, v2, v3, v4, v5, v6, v7) :- " +
		"R1(v1, v2), R2(v2, v3), R3(v3, v4), R4(v4, v5), R5(v5, v6), R6(v6, v7)")
	dec := &decomp.Decomposition{
		Bags:   [][]int{{0, 4, 5}, {0, 1, 3, 4}, {1, 2, 3}, {5, 6}},
		Parent: []int{-1, 0, 1, 0},
	}
	n := float64(db.Size())
	tight, err := Build(view, db, WithStrategy(DecompositionStrategy),
		WithDecomposition(dec), WithSpaceBudget(n))
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Build(view, db, WithStrategy(DecompositionStrategy),
		WithDecomposition(dec), WithSpaceBudget(n*n))
	if err != nil {
		t.Fatal(err)
	}
	if tight.Stats().Height < loose.Stats().Height-1e-9 {
		t.Errorf("tight budget height %v < loose %v", tight.Stats().Height, loose.Stats().Height)
	}
	delayB, err := Build(view, db, WithStrategy(DecompositionStrategy),
		WithDecomposition(dec), WithDelayBudget(math.Sqrt(n)))
	if err != nil {
		t.Fatal(err)
	}
	if h := delayB.Stats().Height; h < 0.49 || h > 0.51 {
		t.Errorf("delay budget √|D|: height = %v, want 0.5", h)
	}
	// All three answer identically.
	ref, err := Build(view, db, WithStrategy(DirectStrategy))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for probe := 0; probe < 10; probe++ {
		vb := relation.Tuple{
			relation.Value(rng.Intn(16)),
			relation.Value(rng.Intn(16)),
			relation.Value(rng.Intn(16)),
		}
		want := Drain(ref.Query(vb))
		sortTuples(want)
		for name, rep := range map[string]*Representation{"tight": tight, "loose": loose, "delay": delayB} {
			got := Drain(rep.Query(vb))
			sortTuples(got)
			if len(got) != len(want) {
				t.Fatalf("%s vb=%v: %d vs %d", name, vb, len(got), len(want))
			}
		}
	}
}

// TestDeltaForHeight checks the uniform scaling helper.
func TestDeltaForHeight(t *testing.T) {
	dec := &decomp.Decomposition{
		Bags:   [][]int{{0}, {0, 1}, {1, 2}, {0, 3}},
		Parent: []int{-1, 0, 1, 0},
	}
	d := decomp.DeltaForHeight(dec, 0.6)
	if h := dec.DeltaHeight(d); h < 0.59 || h > 0.61 {
		t.Errorf("height = %v, want 0.6", h)
	}
	if d0 := decomp.DeltaForHeight(dec, 0); dec.DeltaHeight(d0) != 0 {
		t.Error("zero height must give zero assignment")
	}
}
