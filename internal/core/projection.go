package core

import (
	"cqrep/internal/cq"
	"cqrep/internal/relation"
)

// QueryDistinct answers the access request for the view *as originally
// given*, i.e. with projection semantics: when the original view was
// non-full (its head omitted some body variables), the returned iterator
// yields each distinct valuation of the original head's free variables
// exactly once.
//
// This implements the projection extension sketched in Section 3.2 of the
// paper. Because ExtendToFull appends the missing variables *after* the
// original head, the original free variables form a prefix of the compiled
// view's lexicographic enumeration order; for order-preserving strategies
// (primitive, materialized, direct) duplicates of the projection are
// therefore adjacent and deduplication needs O(1) extra memory. For the
// decomposition strategy, whose order is decomposition-induced, a hash set
// of emitted projections is used instead (O(output) memory).
func (r *Representation) QueryDistinct(vb relation.Tuple) Iterator {
	k := 0
	for _, a := range r.orig.Pattern {
		if a == cq.Free {
			k++
		}
	}
	inner := r.Query(vb)
	if k == r.inst.Mu {
		return inner // full view: nothing to project
	}
	if r.strategy == DecompositionStrategy {
		return &hashDistinctIter{inner: inner, k: k, seen: make(map[string]bool)}
	}
	return &prefixDistinctIter{inner: inner, k: k}
}

// prefixDistinctIter deduplicates adjacent equal prefixes — correct when
// the inner stream is lexicographically ordered.
type prefixDistinctIter struct {
	inner Iterator
	k     int
	last  relation.Tuple
}

// Next yields the next distinct k-prefix.
func (it *prefixDistinctIter) Next() (relation.Tuple, bool) {
	for {
		t, ok := it.inner.Next()
		if !ok {
			return nil, false
		}
		p := t[:it.k]
		if it.last != nil && p.Equal(it.last) {
			continue
		}
		it.last = p.Clone()
		return it.last.Clone(), true
	}
}

// hashDistinctIter deduplicates with a seen-set — correct for any inner
// order.
type hashDistinctIter struct {
	inner Iterator
	k     int
	seen  map[string]bool
}

// Next yields the next previously-unseen k-prefix.
func (it *hashDistinctIter) Next() (relation.Tuple, bool) {
	for {
		t, ok := it.inner.Next()
		if !ok {
			return nil, false
		}
		p := t[:it.k]
		key := string(p.AppendEncode(nil))
		if it.seen[key] {
			continue
		}
		it.seen[key] = true
		return p.Clone(), true
	}
}

// Count drains the access request and reports the number of answers — the
// COUNT aggregate over the full view under the given binding.
func (r *Representation) Count(vb relation.Tuple) int {
	n := 0
	it := r.Query(vb)
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	// In-memory enumeration is infallible; a terminal error here means a
	// reporting backend was plugged in without extending Count's
	// signature, which is a programming error.
	if err := IterErr(it); err != nil {
		panic("core: Count enumeration failed: " + err.Error())
	}
	return n
}

// CountDistinct reports the number of distinct projected answers of the
// original view under the binding.
func (r *Representation) CountDistinct(vb relation.Tuple) int {
	n := 0
	it := r.QueryDistinct(vb)
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	if err := IterErr(it); err != nil {
		panic("core: CountDistinct enumeration failed: " + err.Error())
	}
	return n
}
