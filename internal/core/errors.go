package core

import "errors"

// Sentinel errors for the public API. Every failure mode of compilation,
// binding, and serving wraps one of these, so callers branch with
// errors.Is instead of matching message strings. The root cqrep package
// re-exports them under the same names.
var (
	// ErrInfeasibleBudget reports that the Section-6 planner could not
	// realize the requested space or delay budget: the LP is infeasible or
	// the budget lies outside the AGM-bounded tradeoff range.
	ErrInfeasibleBudget = errors.New("cqrep: infeasible space/delay budget")

	// ErrBadBinding reports an access request whose bound-variable
	// valuation does not match the view: wrong arity, an unknown variable
	// name, or a missing bound variable.
	ErrBadBinding = errors.New("cqrep: bad binding for access request")

	// ErrClosed reports a request submitted to a Server that has been
	// closed.
	ErrClosed = errors.New("cqrep: server closed")

	// ErrBadView reports a view that cannot be compiled as given: a syntax
	// error, an unknown base relation, or an atom/relation arity mismatch.
	ErrBadView = errors.New("cqrep: bad view")

	// ErrUnknownStrategy reports a Strategy value outside the menu.
	ErrUnknownStrategy = errors.New("cqrep: unknown strategy")

	// ErrStrategyMismatch reports a strategy that cannot serve the given
	// view (e.g. AllBound over a view with free variables, or the
	// Theorem-1 primitive over a view with none).
	ErrStrategyMismatch = errors.New("cqrep: strategy incompatible with view")

	// ErrBadOption reports an option with an out-of-domain argument, such
	// as a server buffer below 1 or a negative budget.
	ErrBadOption = errors.New("cqrep: invalid option")

	// ErrArity reports a tuple whose length does not match the target
	// relation's arity, on either the insert or the delete path of a
	// maintained view.
	ErrArity = errors.New("cqrep: tuple arity mismatch")

	// ErrBadSnapshot reports a snapshot that cannot be loaded: wrong magic
	// bytes, a checksum mismatch, truncation, or a payload inconsistent
	// with itself.
	ErrBadSnapshot = errors.New("cqrep: bad snapshot")

	// ErrSnapshotVersion reports a snapshot written with a format version
	// this build does not understand.
	ErrSnapshotVersion = errors.New("cqrep: unsupported snapshot version")
)
