package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"cqrep/internal/cq"
	"cqrep/internal/relation"
	"cqrep/internal/workload"
)

// triangleFixture is the E1 mutual-friend view over a small symmetric
// graph.
func triangleFixture(t *testing.T) (*cq.View, *relation.Database) {
	t.Helper()
	return cq.MustParse("V[bfb](x, y, z) :- R(x, y), R(y, z), R(z, x)"), workload.TriangleDB(7, 40, 220)
}

// pathFixture is the E6 path view P4^{bfffb}.
func pathFixture(t *testing.T) (*cq.View, *relation.Database) {
	t.Helper()
	return workload.PathView(4), workload.PathDB(7, 4, 120, 16)
}

// drainAll enumerates every bound valuation in the instance's bound
// domains cross product (small fixtures) and concatenates the answers, so
// two representations can be compared across their whole request space.
func snapEnum(t *testing.T, r *Representation) []byte {
	t.Helper()
	var buf bytes.Buffer
	var walk func(vb relation.Tuple, i int)
	walk = func(vb relation.Tuple, i int) {
		if i == len(r.BoundNames()) {
			for _, tup := range Drain(r.Query(vb.Clone())) {
				buf.Write(tup.AppendEncode(nil))
				buf.WriteByte('\n')
			}
			return
		}
		for _, v := range r.inst.BoundDomains[i][:min(8, len(r.inst.BoundDomains[i]))] {
			walk(append(vb, v), i+1)
		}
	}
	walk(nil, 0)
	return buf.Bytes()
}

func roundTrip(t *testing.T, r *Representation) *Representation {
	t.Helper()
	var buf bytes.Buffer
	n, err := r.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	loaded, err := ReadRepresentation(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadRepresentation: %v", err)
	}
	return loaded
}

func TestSnapshotRoundTripStrategies(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"primitive", []Option{WithStrategy(PrimitiveStrategy), WithTau(4)}},
		{"decomposition", []Option{WithStrategy(DecompositionStrategy)}},
		{"materialized", []Option{WithStrategy(MaterializedStrategy)}},
		{"direct", []Option{WithStrategy(DirectStrategy)}},
	} {
		t.Run("triangle/"+tc.name, func(t *testing.T) {
			view, db := triangleFixture(t)
			r, err := Build(view, db, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			loaded := roundTrip(t, r)
			want, got := snapEnum(t, r), snapEnum(t, loaded)
			if !bytes.Equal(want, got) {
				t.Fatalf("loaded enumeration differs from compiled (%d vs %d bytes)", len(want), len(got))
			}
			if loaded.Stats().Strategy != r.Stats().Strategy {
				t.Fatalf("strategy %v != %v", loaded.Stats().Strategy, r.Stats().Strategy)
			}
			if loaded.Stats().Entries != r.Stats().Entries {
				t.Fatalf("entries %d != %d", loaded.Stats().Entries, r.Stats().Entries)
			}
		})
	}
}

func TestSnapshotRoundTripPath(t *testing.T) {
	view, db := pathFixture(t)
	for _, strategy := range []Strategy{PrimitiveStrategy, DecompositionStrategy} {
		r, err := Build(view, db, WithStrategy(strategy), WithTau(3))
		if err != nil {
			t.Fatal(err)
		}
		loaded := roundTrip(t, r)
		if want, got := snapEnum(t, r), snapEnum(t, loaded); !bytes.Equal(want, got) {
			t.Fatalf("%v: loaded enumeration differs from compiled", strategy)
		}
	}
}

func TestSnapshotRoundTripAllBound(t *testing.T) {
	db := relation.NewDatabase()
	r1 := relation.NewRelation("R", 2)
	r1.MustInsert(1, 2)
	r1.MustInsert(2, 3)
	db.Add(r1)
	view := cq.MustParse("B[bb](x, y) :- R(x, y)")
	r, err := Build(view, db)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats().Strategy != AllBoundStrategy {
		t.Fatalf("auto picked %v", r.Stats().Strategy)
	}
	loaded := roundTrip(t, r)
	for _, tc := range []struct {
		vb   relation.Tuple
		want bool
	}{{relation.Tuple{1, 2}, true}, {relation.Tuple{2, 1}, false}} {
		if got := loaded.Exists(tc.vb); got != tc.want {
			t.Errorf("Exists(%v) = %v after load, want %v", tc.vb, got, tc.want)
		}
	}
}

// TestSnapshotDeterministicBytes locks the "identical structure, identical
// bytes" property the sorted dictionary/bucket encodings provide.
func TestSnapshotDeterministicBytes(t *testing.T) {
	view, db := triangleFixture(t)
	r, err := Build(view, db, WithStrategy(PrimitiveStrategy), WithTau(4))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if _, err := r.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two WriteTo calls produced different bytes")
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	view, db := triangleFixture(t)
	r, err := Build(view, db, WithStrategy(PrimitiveStrategy), WithTau(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), snap...)
		bad[0] ^= 0xff
		_, err := ReadRepresentation(bytes.NewReader(bad))
		if !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("err = %v, want ErrBadSnapshot", err)
		}
	})
	t.Run("version skew", func(t *testing.T) {
		bad := append([]byte(nil), snap...)
		binary.BigEndian.PutUint16(bad[len(snapshotMagic):], snapshotVersion+41)
		_, err := ReadRepresentation(bytes.NewReader(bad))
		if !errors.Is(err, ErrSnapshotVersion) {
			t.Fatalf("err = %v, want ErrSnapshotVersion", err)
		}
		if errors.Is(err, ErrBadSnapshot) {
			t.Fatal("version skew must not double as ErrBadSnapshot")
		}
	})
	t.Run("payload bitflip", func(t *testing.T) {
		bad := append([]byte(nil), snap...)
		bad[snapshotHeaderLen+len(bad)/2] ^= 0x01
		_, err := ReadRepresentation(bytes.NewReader(bad))
		if !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("err = %v, want ErrBadSnapshot", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{1, snapshotHeaderLen - 2, snapshotHeaderLen + 10, len(snap) - 3} {
			_, err := ReadRepresentation(bytes.NewReader(snap[:cut]))
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("cut %d: err = %v, want ErrBadSnapshot", cut, err)
			}
		}
	})
	t.Run("trailing garbage inside payload is rejected", func(t *testing.T) {
		// Extend the payload by one byte, fixing length and checksum, so
		// only the structural trailing-bytes check can catch it.
		payload := append(append([]byte(nil), snap[snapshotHeaderLen:len(snap)-4]...), 0x00)
		bad := append([]byte(nil), snap[:snapshotHeaderLen]...)
		binary.BigEndian.PutUint64(bad[len(snapshotMagic)+2:], uint64(len(payload)))
		bad = append(bad, payload...)
		var sum [4]byte
		binary.BigEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
		bad = append(bad, sum[:]...)
		_, err := ReadRepresentation(bytes.NewReader(bad))
		if !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("err = %v, want ErrBadSnapshot", err)
		}
	})
}
