// Package core is the public face of the library: it compiles an adorned
// view over a database into a compressed representation chosen from the
// paper's menu — the Theorem-1 primitive, the Theorem-2 decomposed
// structure, or the two extremal baselines — and answers access requests
// through a uniform iterator interface.
//
// The planner implements Section 6: given a space budget it minimizes
// delay (MinDelayCover), given a delay budget it minimizes space
// (MinSpaceCover), both in polynomial time via the linear programs of
// Figure 5.
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"cqrep/internal/cq"
	"cqrep/internal/decomp"
	"cqrep/internal/fractional"
	"cqrep/internal/join"
	"cqrep/internal/primitive"
	"cqrep/internal/relation"
)

// Strategy selects the compressed representation.
type Strategy int

// Available strategies.
const (
	// Auto picks AllBound for boolean views, honors explicit budgets with
	// the Theorem-1 primitive, and otherwise builds the constant-delay
	// Theorem-2 structure over a searched connex decomposition.
	Auto Strategy = iota
	// PrimitiveStrategy is the Theorem-1 delay-balanced tree structure.
	PrimitiveStrategy
	// DecompositionStrategy is the Theorem-2 per-bag structure.
	DecompositionStrategy
	// MaterializedStrategy materializes and indexes the full output.
	MaterializedStrategy
	// DirectStrategy evaluates every request from scratch.
	DirectStrategy
	// AllBoundStrategy answers boolean (all-bound) views with index probes.
	AllBoundStrategy
)

// String names the strategy for reports.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case PrimitiveStrategy:
		return "primitive"
	case DecompositionStrategy:
		return "decomposition"
	case MaterializedStrategy:
		return "materialized"
	case DirectStrategy:
		return "direct"
	case AllBoundStrategy:
		return "allbound"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Iterator is the uniform access-request result stream: tuples over the
// view's free variables.
type Iterator interface {
	Next() (relation.Tuple, bool)
}

// config collects build options.
type config struct {
	strategy    Strategy
	tau         float64
	cover       fractional.Cover
	dec         *decomp.Decomposition
	delta       []float64
	spaceBudget float64 // entries; 0 = unset
	delayBudget float64 // τ bound; 0 = unset
	workers     int     // build parallelism; 0 = GOMAXPROCS
	shards      int     // hash shards; <= 1 = single backend
	noDelta     bool    // disable the delta-apply maintenance path
	ctx         context.Context
}

// Option customizes Build.
type Option func(*c)

type c = config

// WithStrategy forces a representation strategy.
func WithStrategy(s Strategy) Option { return func(cfg *config) { cfg.strategy = s } }

// WithTau sets the Theorem-1 threshold τ directly.
func WithTau(tau float64) Option { return func(cfg *config) { cfg.tau = tau } }

// WithCover sets the fractional edge cover used by the Theorem-1 structure
// (one weight per body atom).
func WithCover(u fractional.Cover) Option { return func(cfg *config) { cfg.cover = u } }

// WithDecomposition supplies a connex tree decomposition for the Theorem-2
// structure (bags over the normalized view's variable ids).
func WithDecomposition(d *decomp.Decomposition) Option { return func(cfg *config) { cfg.dec = d } }

// WithDelta supplies the per-bag delay assignment for the Theorem-2
// structure.
func WithDelta(delta []float64) Option { return func(cfg *config) { cfg.delta = delta } }

// WithSpaceBudget asks the Section-6 planner to minimize delay subject to
// the structure using about the given number of entries.
func WithSpaceBudget(entries float64) Option { return func(cfg *config) { cfg.spaceBudget = entries } }

// WithDelayBudget asks the Section-6 planner to minimize space subject to
// delay at most the given τ.
func WithDelayBudget(tau float64) Option { return func(cfg *config) { cfg.delayBudget = tau } }

// WithWorkers bounds the goroutines used during compilation: decomposition
// bags, heavy-pair dictionary nodes, and shard sub-representations are
// built by a pool of at most n workers. n <= 0 (the default) means
// runtime.GOMAXPROCS(0). The compiled representation is identical for every
// worker count — parallelism changes only the build wall-clock.
func WithWorkers(n int) Option { return func(cfg *config) { cfg.workers = n } }

// WithShards hash-partitions the database by the values of the view's
// shard variable (the first bound head variable, or the first free one for
// views with no bound variables) and compiles one sub-representation per
// shard. Shards compile in parallel under the WithWorkers pool; access
// requests route directly to the owning shard when the shard variable is
// bound and merge-enumerate across shards in global lexicographic order
// when it is free, so the sharded representation enumerates byte-for-byte
// identically to the unsharded one. Planner budgets (WithSpaceBudget,
// WithDelayBudget) apply per shard. n <= 1 (the default) compiles a single
// backend.
func WithShards(n int) Option { return func(cfg *config) { cfg.shards = n } }

// WithDeltaApply toggles the delta-application maintenance path (on by
// default): backends with the deltaApplier capability — materialized
// buckets, all-bound indexes, and the Theorem-1 tree — absorb a change
// batch on a copy-on-write clone instead of recompiling; everything else
// (and any delta out of a backend's reach) falls back to the full or
// dirty-shard recompile regardless of this option. Build itself ignores
// the option; only Maintained's rebuild cycle consults it.
func WithDeltaApply(enabled bool) Option { return func(cfg *config) { cfg.noDelta = !enabled } }

// Stats describes a built representation.
type Stats struct {
	Strategy  Strategy
	BuildTime time.Duration
	// Entries counts structure-specific stored items (dictionary entries +
	// tree nodes, or materialized tuples); Bytes estimates their footprint.
	// Neither includes the linear-space base indexes.
	Entries int
	Bytes   int
	// Tau and Alpha describe the Theorem-1 parameters when applicable.
	Tau   float64
	Alpha float64
	// Width and Height are the δ-width and δ-height for decompositions.
	Width  float64
	Height float64
	// Shards counts the hash shards of the compiled representation; 1 means
	// a single (unsharded) backend.
	Shards int
}

// Representation is a compiled adorned view ready to serve access requests.
//
// A Representation is immutable after Build and safe for any number of
// concurrent Query/Exists callers: every iterator carries its own
// enumeration state and the underlying structures and base indexes are
// read-only. The base Database must not be mutated while queries run; use
// Maintained for views over changing data.
type Representation struct {
	orig *cq.View // the view as given, possibly non-full
	view *cq.View // the compiled full view
	nv   *cq.NormalizedView
	inst *join.Instance
	db   *relation.Database // the base database the view was compiled over

	strategy Strategy
	be       backend // the uniform strategy surface (see backend.go)

	stats Stats

	// lazy defers decoding for mmap-loaded snapshots; nil for eagerly
	// built or loaded representations. See ensure in lazy.go.
	lazy *lazySnapshot
}

// Build compiles the adorned view over db. Non-full views (boolean or
// projected heads) are extended to full views first; their boolean answer
// is "is the iterator non-empty".
func Build(view *cq.View, db *relation.Database, opts ...Option) (*Representation, error) {
	return BuildContext(context.Background(), view, db, opts...)
}

// BuildContext is Build with cancellation: ctx is threaded into the
// parallel Theorem-1 and Theorem-2 construction pools, which poll it and
// abandon the build promptly, returning ctx.Err(). A nil ctx means
// context.Background().
func BuildContext(ctx context.Context, view *cq.View, db *relation.Database, opts ...Option) (*Representation, error) {
	cfg, err := newBuildConfig(ctx, opts)
	if err != nil {
		return nil, err
	}
	if err := cfg.ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.shards > 1 {
		return buildSharded(view, db, cfg)
	}
	return buildSingle(view, db, cfg)
}

// newBuildConfig resolves the option slice into a validated config. A nil
// ctx means context.Background().
func newBuildConfig(ctx context.Context, opts []Option) (*config, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := &config{ctx: ctx}
	for _, o := range opts {
		o(cfg)
	}
	if cfg.workers <= 0 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	if err := validateBudgets(cfg); err != nil {
		return nil, err
	}
	return cfg, nil
}

// newShell runs the cheap, deterministic front of every build and load:
// extend the view to full, normalize it against db, and construct the
// linear-space base indexes. The returned representation has no backend
// yet.
func newShell(view *cq.View, db *relation.Database) (*Representation, error) {
	full := view.ExtendToFull()
	nv, err := cq.Normalize(full, db)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadView, err)
	}
	inst, err := join.NewInstance(nv)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadView, err)
	}
	return &Representation{orig: view, view: full, nv: nv, inst: inst, db: db}, nil
}

// resolveStrategy applies the Auto policy: AllBound for boolean views, the
// Theorem-1 primitive when explicit budgets steer the planner, and the
// constant-delay Theorem-2 structure otherwise. The choice depends only on
// the view shape and the options, so every shard of a partitioned build
// resolves to the same strategy.
func resolveStrategy(cfg *config, inst *join.Instance) Strategy {
	if cfg.strategy != Auto {
		return cfg.strategy
	}
	switch {
	case inst.Mu == 0:
		return AllBoundStrategy
	case cfg.tau > 0 || cfg.spaceBudget > 0 || cfg.delayBudget > 0 || cfg.cover != nil:
		return PrimitiveStrategy
	default:
		return DecompositionStrategy
	}
}

// buildSingle compiles one (unsharded) backend through the registry.
func buildSingle(view *cq.View, db *relation.Database, cfg *config) (*Representation, error) {
	r, err := newShell(view, db)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	strategy := resolveStrategy(cfg, r.inst)
	r.strategy = strategy
	r.stats.Strategy = strategy
	r.stats.Shards = 1
	spec, ok := backendSpecs[strategy]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownStrategy, strategy)
	}
	be, err := spec.build(r, cfg)
	if err != nil {
		return nil, err
	}
	r.be = be
	if err := cfg.ctx.Err(); err != nil {
		return nil, err
	}
	r.stats.BuildTime = time.Since(start)
	return r, nil
}

// validateBudgets rejects out-of-domain planner budgets before any work
// happens. Zero means unset; negative or NaN values are option misuse.
func validateBudgets(cfg *config) error {
	if cfg.spaceBudget < 0 || math.IsNaN(cfg.spaceBudget) {
		return fmt.Errorf("%w: space budget %v", ErrBadOption, cfg.spaceBudget)
	}
	if cfg.delayBudget < 0 || math.IsNaN(cfg.delayBudget) {
		return fmt.Errorf("%w: delay budget %v", ErrBadOption, cfg.delayBudget)
	}
	if cfg.tau < 0 || math.IsNaN(cfg.tau) {
		return fmt.Errorf("%w: tau %v", ErrBadOption, cfg.tau)
	}
	return nil
}

// relationSizes lists per-atom base relation sizes.
func relationSizes(inst *join.Instance) []int {
	sizes := make([]int, len(inst.Atoms))
	for i, a := range inst.Atoms {
		sizes[i] = a.Rel.Len()
	}
	return sizes
}

// buildPrimitive resolves (u, τ) from the options and Section-6 planner and
// builds the Theorem-1 structure.
func (r *Representation) buildPrimitive(cfg *config) (backend, error) {
	if r.inst.Mu == 0 {
		return nil, fmt.Errorf("%w: primitive strategy requires at least one free variable", ErrStrategyMismatch)
	}
	h := r.nv.Hypergraph()
	u := cfg.cover
	tau := cfg.tau
	switch {
	case cfg.spaceBudget > 0:
		pt, err := fractional.MinDelayCover(h, r.nv.Free, relationSizes(r.inst), math.Log(cfg.spaceBudget))
		if err != nil {
			return nil, fmt.Errorf("%w: space budget %g: %w", ErrInfeasibleBudget, cfg.spaceBudget, err)
		}
		if u == nil {
			u = pt.U
		}
		if tau == 0 {
			tau = pt.Tau
		}
	case cfg.delayBudget > 0:
		pt, err := fractional.MinSpaceCover(h, r.nv.Free, relationSizes(r.inst), math.Log(cfg.delayBudget))
		if err != nil {
			return nil, fmt.Errorf("%w: delay budget %g: %w", ErrInfeasibleBudget, cfg.delayBudget, err)
		}
		if u == nil {
			u = pt.U
		}
		if tau == 0 {
			tau = pt.Tau
		}
	}
	if u == nil {
		u = fractional.AllOnes(h)
	}
	u = sanitizeCover(h, u)
	if tau == 0 {
		tau = 1
	}
	if tau < 1 {
		tau = 1
	}
	s, err := primitive.Build(r.inst, u, tau, primitive.Workers(cfg.workers), primitive.Context(cfg.ctx))
	if err != nil {
		return nil, err
	}
	st := s.Stats()
	r.stats.Entries = st.DictEntries + st.TreeNodes
	r.stats.Bytes = st.Bytes
	r.stats.Tau = tau
	r.stats.Alpha = s.Estimator().Alpha
	return primitiveBackend{s: s}, nil
}

// buildDecomposition resolves the decomposition and delay assignment and
// builds the Theorem-2 structure.
func (r *Representation) buildDecomposition(cfg *config) (backend, error) {
	h := r.nv.Hypergraph()
	d := cfg.dec
	if d == nil {
		res, err := decomp.SearchConnex(h, r.nv.Bound)
		if err != nil {
			return nil, err
		}
		d = res.Dec
	}
	delta := cfg.delta
	if delta == nil {
		dbSize := 0
		for _, s := range relationSizes(r.inst) {
			dbSize += s
		}
		switch {
		case cfg.spaceBudget > 0:
			// Section 6: per-bag MinDelayCover under the space budget.
			var err error
			delta, err = decomp.OptimizeDelta(r.nv, d, math.Log(cfg.spaceBudget))
			if err != nil {
				return nil, fmt.Errorf("%w: space budget %g: %w", ErrInfeasibleBudget, cfg.spaceBudget, err)
			}
		case cfg.delayBudget > 1:
			// Delay budget |D|^h: scale a uniform assignment to height h.
			delta = decomp.DeltaForHeight(d, decomp.LogBase(dbSize, cfg.delayBudget))
		case cfg.tau > 1:
			// A uniform delay assignment realizing roughly the requested
			// per-bag delay, as in Example 10.
			delta = decomp.UniformDelta(d, decomp.LogBase(dbSize, cfg.tau))
		default:
			delta = make([]float64, len(d.Bags))
		}
	}
	s, err := decomp.Build(r.nv, d, delta, decomp.Workers(cfg.workers), decomp.Context(cfg.ctx))
	if err != nil {
		return nil, err
	}
	st := s.Stats()
	r.stats.Entries = st.DictEntries + st.TreeNodes
	r.stats.Bytes = st.Bytes
	r.stats.Width = st.Width
	r.stats.Height = st.Height
	return decompBackend{s: s}, nil
}

// sanitizeCover rescales LP output so numeric fuzz cannot invalidate the
// cover property demanded by the estimator.
func sanitizeCover(h cq.Hypergraph, u fractional.Cover) fractional.Cover {
	all := make([]int, h.N)
	for i := range all {
		all[i] = i
	}
	minCov := math.Inf(1)
	for _, x := range all {
		cov := 0.0
		for e, edge := range h.Edges {
			for _, v := range edge {
				if v == x {
					cov += u[e]
					break
				}
			}
		}
		if cov < minCov {
			minCov = cov
		}
	}
	if minCov >= 1 || minCov < 0.5 {
		if minCov < 0.5 {
			return fractional.AllOnes(h)
		}
		return u
	}
	out := make(fractional.Cover, len(u))
	for i, w := range u {
		out[i] = w / minCov
	}
	return out
}

// Query answers an access request given the bound-variable valuation in
// head order. It is safe to call from any number of goroutines; the
// returned Iterator is not itself safe for sharing between goroutines.
// An mmap-loaded representation whose payload fails to decode returns an
// empty iterator whose IterErr wraps ErrBadSnapshot.
func (r *Representation) Query(vb relation.Tuple) Iterator {
	if err := r.ensure(); err != nil {
		return errIterator{err}
	}
	return r.be.Query(vb)
}

// QueryArgs answers an access request given bound values by variable name.
// A valuation that does not match the view's bound variables fails with an
// error wrapping ErrBadBinding.
func (r *Representation) QueryArgs(args map[string]relation.Value) (Iterator, error) {
	vb, err := r.Bind(args)
	if err != nil {
		return nil, err
	}
	return r.Query(vb), nil
}

// Bind resolves named bound values into a valuation in the view's bound
// order, wrapping failures with ErrBadBinding.
func (r *Representation) Bind(args map[string]relation.Value) (relation.Tuple, error) {
	if err := r.ensure(); err != nil {
		return nil, err
	}
	vb, err := r.nv.BindArgs(args)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadBinding, err)
	}
	return vb, nil
}

// Exists reports whether the access request has any answer — the boolean
// semantics of non-full adorned views (Section 3.3). Like Query, it is safe
// for concurrent use. Backends with a native membership probe (the
// all-bound index check, the materialized bucket lookup) answer without
// constructing an enumeration.
func (r *Representation) Exists(vb relation.Tuple) bool {
	if err := r.ensure(); err != nil {
		return false
	}
	return r.be.Exists(vb)
}

// Stats returns the build statistics. An mmap-loaded representation
// materializes first; one that fails to decode reports zero statistics.
func (r *Representation) Stats() Stats {
	r.ensure()
	return r.stats
}

// View returns the (full) compiled view.
func (r *Representation) View() *cq.View { return r.view }

// Normalized returns the normalized view (variable ids, orders), or nil
// for an mmap-loaded representation that fails to decode.
func (r *Representation) Normalized() *cq.NormalizedView {
	r.ensure()
	return r.nv
}

// Instance returns the bound join instance (base indexes), or nil for an
// mmap-loaded representation that fails to decode.
func (r *Representation) Instance() *join.Instance {
	r.ensure()
	return r.inst
}

// Database returns the base-relation database the representation was
// compiled over (snapshots carry it, so loaded representations have one
// too), or nil for an mmap-loaded representation that fails to decode.
// The database is shared with the representation: callers must treat it
// as read-only and route changes through Maintained instead.
func (r *Representation) Database() *relation.Database {
	r.ensure()
	return r.db
}

// EnumOrder reports the representation's enumeration order as output
// tuple positions, most significant first; nil means lexicographic head
// order. Only the Theorem-2 decomposition enumerates in a non-head order
// (Algorithm 5's traversal); differential checkers use this to reorder a
// trusted baseline before demanding byte-identical streams.
func (r *Representation) EnumOrder() []int {
	if err := r.ensure(); err != nil {
		return nil
	}
	return r.be.EnumOrder()
}

// FreeNames returns the output column names of Query tuples.
func (r *Representation) FreeNames() []string {
	if err := r.ensure(); err != nil {
		return nil
	}
	return r.nv.FreeNames()
}

// BoundNames returns the expected valuation order for Query.
func (r *Representation) BoundNames() []string {
	if err := r.ensure(); err != nil {
		return nil
	}
	return r.nv.BoundNames()
}

// Drain collects an iterator fully.
func Drain(it Iterator) []relation.Tuple {
	var out []relation.Tuple
	for {
		t, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}
