package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"cqrep/internal/cq"
	"cqrep/internal/relation"
	"cqrep/internal/workload"
)

// shardexport_test.go verifies the per-shard snapshot export that the
// distributed serving tier ships to workers: each exported shard must load
// as an ordinary snapshot and answer exactly its slice of the composite's
// results — the routed slice for bound-key views, an EnumOrder-mergeable
// slice for free enumerations.

// exportShards writes every shard of rep through WriteShard and loads each
// back through the ordinary snapshot reader.
func exportShards(t *testing.T, rep *Representation) []*Representation {
	t.Helper()
	out := make([]*Representation, rep.ShardCount())
	for i := range out {
		var buf bytes.Buffer
		if _, err := rep.WriteShard(i, &buf); err != nil {
			t.Fatalf("WriteShard(%d): %v", i, err)
		}
		loaded, err := ReadRepresentation(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reading exported shard %d: %v", i, err)
		}
		out[i] = loaded
	}
	return out
}

// TestShardExportRoutedIdentity: for a bound-key sharded view, the shard
// that relation.ShardOf says owns a binding must answer it byte-identically
// to the composite, and every other shard must answer it empty — the
// disjointness that makes single-worker routing correct.
func TestShardExportRoutedIdentity(t *testing.T) {
	view := cq.MustParse("V[bfb](x, y, z) :- R(x, y), R(y, z), R(z, x)")
	db := workload.TriangleDB(7, 40, 420)
	const shards = 3
	rep, err := Build(view, db, WithStrategy(MaterializedStrategy), WithShards(shards))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if got := rep.ShardCount(); got != shards {
		t.Fatalf("ShardCount() = %d, want %d", got, shards)
	}
	keyIdx := rep.ShardKeyIndex()
	if keyIdx < 0 {
		t.Fatalf("ShardKeyIndex() = %d, want routable bound key", keyIdx)
	}
	loaded := exportShards(t, rep)
	for _, vb := range sampleBindings(rep, 40, 7) {
		owner := relation.ShardOf(vb[keyIdx], shards)
		want := enumBytes(rep, vb)
		for i, sh := range loaded {
			got := enumBytes(sh, vb)
			if i == owner {
				if !bytes.Equal(got, want) {
					t.Fatalf("shard %d (owner of %v): enumeration differs:\nwant %q\ngot  %q", i, vb, want, got)
				}
			} else if len(got) != 0 {
				t.Fatalf("shard %d answered %q for %v owned by shard %d", i, got, vb, owner)
			}
		}
	}
}

// TestShardExportMergedIdentity: for a free enumeration, merging the
// exported shards' streams under the composite's EnumOrder (ties broken by
// shard index, as the coordinator does) reproduces the composite's stream
// byte-for-byte.
func TestShardExportMergedIdentity(t *testing.T) {
	view := cq.MustParse("P(x1, x2, x3) :- R1(x1, x2), R2(x2, x3)")
	db := workload.PathDB(11, 2, 300, 20)
	const shards = 4
	rep, err := Build(view, db, WithStrategy(DecompositionStrategy), WithShards(shards))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if got := rep.ShardKeyIndex(); got != -1 {
		t.Fatalf("ShardKeyIndex() = %d, want -1 for a free shard variable", got)
	}
	order := rep.EnumOrder()
	loaded := exportShards(t, rep)
	streams := make([][]relation.Tuple, len(loaded))
	for i, sh := range loaded {
		// EnumOrder must survive export: the merge is only correct when
		// every shard enumerates in the composite's declared order.
		if so := sh.EnumOrder(); len(so) != len(order) {
			t.Fatalf("shard %d EnumOrder %v != composite %v", i, so, order)
		} else {
			for j := range so {
				if so[j] != order[j] {
					t.Fatalf("shard %d EnumOrder %v != composite %v", i, so, order)
				}
			}
		}
		streams[i] = Drain(sh.Query(nil))
	}
	merged := mergeStreams(streams, order)
	var got bytes.Buffer
	for _, tu := range merged {
		got.Write(tu.AppendEncode(nil))
		got.WriteByte('|')
	}
	if want := enumBytes(rep, nil); !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("merged shard streams differ from composite:\nwant %q\ngot  %q", want, got.Bytes())
	}
}

// mergeStreams k-way merges sorted per-shard streams under order, lowest
// shard index winning ties — the reference merge the coordinator mirrors.
func mergeStreams(streams [][]relation.Tuple, order []int) []relation.Tuple {
	pos := make([]int, len(streams))
	var out []relation.Tuple
	for {
		best := -1
		for i := range streams {
			if pos[i] >= len(streams[i]) {
				continue
			}
			if best < 0 || tupleLessUnder(streams[i][pos[i]], streams[best][pos[best]], order) {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, streams[best][pos[best]])
		pos[best]++
	}
}

// tupleLessUnder is the strict EnumOrder comparison: order positions are
// most significant, remaining positions break ties in index order.
func tupleLessUnder(a, b relation.Tuple, order []int) bool {
	seen := make(map[int]bool, len(order))
	for _, idx := range order {
		seen[idx] = true
		if a[idx] != b[idx] {
			return a[idx] < b[idx]
		}
	}
	for i := range a {
		if !seen[i] && a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// TestShardExportUnsharded: an unsharded representation exports exactly one
// shard — itself — and rejects any other index.
func TestShardExportUnsharded(t *testing.T) {
	view := cq.MustParse("V[bfb](x, y, z) :- R(x, y), R(y, z), R(z, x)")
	db := workload.TriangleDB(5, 30, 300)
	rep, err := Build(view, db, WithStrategy(MaterializedStrategy))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if got := rep.ShardCount(); got != 1 {
		t.Fatalf("ShardCount() = %d, want 1", got)
	}
	if got := rep.ShardKeyIndex(); got != -1 {
		t.Fatalf("ShardKeyIndex() = %d, want -1", got)
	}
	var buf bytes.Buffer
	if _, err := rep.WriteShard(0, &buf); err != nil {
		t.Fatalf("WriteShard(0): %v", err)
	}
	loaded, err := ReadRepresentation(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reading exported shard 0: %v", err)
	}
	for _, vb := range sampleBindings(rep, 20, 3) {
		if !bytes.Equal(enumBytes(rep, vb), enumBytes(loaded, vb)) {
			t.Fatalf("shard-0 export of unsharded rep differs for %v", vb)
		}
	}
	if _, err := rep.WriteShard(1, &buf); err == nil {
		t.Fatalf("WriteShard(1) on unsharded rep succeeded, want error")
	}
}

// TestShardExportMmapAndEnsure: shard metadata and export work identically
// through the mmap load path, and Ensure reports the decode verdict a
// readiness probe relies on.
func TestShardExportMmapAndEnsure(t *testing.T) {
	view := cq.MustParse("V[bfb](x, y, z) :- R(x, y), R(y, z), R(z, x)")
	db := workload.TriangleDB(7, 40, 420)
	const shards = 3
	rep, err := Build(view, db, WithStrategy(MaterializedStrategy), WithShards(shards))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	path := filepath.Join(t.TempDir(), "v.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.WriteTo(f); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	mm, err := OpenRepresentationMmap(path)
	if err != nil {
		t.Fatalf("OpenRepresentationMmap: %v", err)
	}
	if err := mm.Ensure(); err != nil {
		t.Fatalf("Ensure on a valid mapping: %v", err)
	}
	if got := mm.ShardCount(); got != shards {
		t.Fatalf("mmap ShardCount() = %d, want %d", got, shards)
	}
	if got, want := mm.ShardKeyIndex(), rep.ShardKeyIndex(); got != want {
		t.Fatalf("mmap ShardKeyIndex() = %d, want %d", got, want)
	}
	var direct, mapped bytes.Buffer
	if _, err := rep.WriteShard(1, &direct); err != nil {
		t.Fatal(err)
	}
	if _, err := mm.WriteShard(1, &mapped); err != nil {
		t.Fatal(err)
	}
	a, err := ReadRepresentation(bytes.NewReader(direct.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadRepresentation(bytes.NewReader(mapped.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, vb := range sampleBindings(rep, 20, 11) {
		if !bytes.Equal(enumBytes(a, vb), enumBytes(b, vb)) {
			t.Fatalf("mmap-exported shard differs from direct export for %v", vb)
		}
	}
}
