package core

import (
	"fmt"
	"io"
)

// shardexport.go is the shard-shipping surface of the sharded composite
// backend: a distributed serving tier (internal/coord) needs each shard of
// a compiled representation as its own self-contained snapshot file so a
// worker can join by fetching exactly the shards it is assigned — the
// join-by-snapshot protocol of DESIGN.md §6. Each shard's
// sub-representation already serializes as a complete snapshot frame (the
// v2 sharded payload nests one per shard), so export is a plain WriteTo of
// the sub-representation; a worker loads the file with the ordinary eager
// or mmap decoder and serves it like any other view.

// ShardCount reports how many shards the representation's backend
// partitions into: 1 for every unsharded backend, the WithShards count for
// the sharded composite. An mmap-loaded representation materializes first;
// one that fails to decode reports 1.
func (r *Representation) ShardCount() int {
	if err := r.ensure(); err != nil {
		return 1
	}
	if sb, ok := r.be.(*shardedBackend); ok {
		return sb.parts.n
	}
	return 1
}

// ShardKeyIndex reports the position of the shard key inside a bound
// valuation, or -1 when requests cannot be routed by a bound value — the
// representation is unsharded, the shard variable is free (every request
// merge-enumerates all shards), or the backend failed to decode. A router
// holding a valuation vb with ShardKeyIndex() == k >= 0 finds the owning
// shard with relation.ShardOf(vb[k], ShardCount()) — the same hash the
// partitioner used, so routing and partitioning can never disagree.
func (r *Representation) ShardKeyIndex() int {
	if err := r.ensure(); err != nil {
		return -1
	}
	if sb, ok := r.be.(*shardedBackend); ok {
		return sb.parts.keyIdx
	}
	return -1
}

// WriteShard serializes shard i as a self-contained snapshot frame that
// loads through ReadRepresentation (or the mmap opener) like any other
// snapshot. For an unsharded representation only shard 0 exists and the
// frame is the whole representation. The exported frame carries the
// per-shard view (identical head and access pattern; body relations may be
// aliased where one base relation needs different partitions per atom), so
// a loaded shard answers the same access requests as the composite and
// enumerates its slice of the answers in the composite's order.
func (r *Representation) WriteShard(i int, w io.Writer) (int64, error) {
	if err := r.ensure(); err != nil {
		return 0, err
	}
	sb, ok := r.be.(*shardedBackend)
	if !ok {
		if i != 0 {
			return 0, fmt.Errorf("core: unsharded representation has only shard 0, not %d", i)
		}
		return r.WriteTo(w)
	}
	if i < 0 || i >= len(sb.subs) {
		return 0, fmt.Errorf("core: shard %d out of range [0,%d)", i, len(sb.subs))
	}
	return sb.subs[i].WriteTo(w)
}

// Ensure forces a lazily-loaded (mmap) representation to materialize and
// reports the decode verdict; it is a no-op nil for eagerly built or
// loaded representations. Readiness probes use it to distinguish "mapped"
// from "decodable": an mmap-opened snapshot defers payload verification to
// first touch, and Ensure is that first touch.
func (r *Representation) Ensure() error { return r.ensure() }
