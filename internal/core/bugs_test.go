package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"cqrep/internal/cq"
	"cqrep/internal/relation"
)

// Regression tests for the concurrency-bugfix sweep: the rebuildBatch
// lost-wakeup race, the unvalidated Delete arity, and nondeterministic
// iterator cancellation. All of them run under `go test -race` in CI.

// smallMaintainedDB is a tiny edge relation so rebuilds are fast enough to
// chain many times within one test.
func smallMaintainedDB() (*cq.View, *relation.Database) {
	db := relation.NewDatabase()
	r := relation.NewRelation("R", 2)
	r.MustInsert(1, 2)
	r.MustInsert(2, 3)
	r.MustInsert(3, 1)
	db.Add(r)
	return cq.MustParse("V[bf](x, y) :- R(x, y)"), db
}

// TestMaintainedNoLostWakeup provokes the race between rebuildBatch's
// final staleness check and clearing the rebuilding flag: an Insert
// landing in that window loses its CompareAndSwap, and before the fix its
// churn was never rebuilt — Pending stayed above the budget until some
// unrelated operation happened by. With fraction 0 every insert makes the
// buffer stale, so after all inserts settle Pending must drain to 0
// without any further stimulus.
func TestMaintainedNoLostWakeup(t *testing.T) {
	view, db := smallMaintainedDB()
	m, err := NewMaintained(view, db, 0, WithStrategy(DirectStrategy))
	if err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const perWriter = 60
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				v := relation.Value(10 + w*perWriter + i)
				if err := m.Insert("R", relation.Tuple{v, v + 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// No further Insert/Query stimulus from here on: draining is entirely
	// up to the rebuild chain re-checking staleness after clearing its
	// flag. Polling Pending takes only a read lock and triggers nothing.
	deadline := time.Now().Add(10 * time.Second)
	for m.Pending() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("lost rebuild wakeup: %d changes still pending with no rebuild in flight", m.Pending())
		}
		m.Quiesce()
		time.Sleep(time.Millisecond)
	}
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	it, err := m.Query(relation.Tuple{10})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(Drain(it)); got != 1 {
		t.Fatalf("query after drain saw %d tuples, want 1", got)
	}
}

// TestMaintainedLostWakeupWindow pins the race deterministically: the
// test hook parks the rebuild goroutine in the exact window between its
// pre-clear staleness view and clearing the rebuilding flag, an Insert
// lands there (its trigger loses the CompareAndSwap), and the buffered
// churn must still get rebuilt once the parked goroutine resumes. Before
// the fix the wakeup was lost and Pending stayed at 1 forever.
func TestMaintainedLostWakeupWindow(t *testing.T) {
	view, db := smallMaintainedDB()
	m, err := NewMaintained(view, db, 0, WithStrategy(DirectStrategy))
	if err != nil {
		t.Fatal(err)
	}
	inWindow := make(chan struct{})
	proceed := make(chan struct{})
	var once sync.Once
	m.testHookPreClear = func() {
		once.Do(func() {
			close(inWindow)
			<-proceed
		})
	}
	if err := m.Insert("R", relation.Tuple{10, 11}); err != nil {
		t.Fatal(err)
	}
	<-inWindow // the first rebuild is parked inside the race window
	if err := m.Insert("R", relation.Tuple{11, 12}); err != nil {
		t.Fatal(err) // this trigger loses its CAS against the parked rebuild
	}
	close(proceed)

	deadline := time.Now().Add(10 * time.Second)
	for m.Pending() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("lost rebuild wakeup: %d changes still pending", m.Pending())
		}
		m.Quiesce()
		time.Sleep(time.Millisecond)
	}
	it, err := m.Query(relation.Tuple{11})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(Drain(it)); got != 1 {
		t.Fatalf("churn from the race window enumerated %d tuples, want 1", got)
	}
}

// TestMaintainedDeleteArity locks the fix for the silently-buffered
// wrong-arity delete: both buffer paths must reject the tuple immediately
// with the typed arity error, leaving nothing pending to poison the next
// rebuild batch.
func TestMaintainedDeleteArity(t *testing.T) {
	view, db := smallMaintainedDB()
	m, err := NewMaintained(view, db, 100, WithStrategy(DirectStrategy)) // huge budget: no auto rebuild
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Delete("R", relation.Tuple{1, 2, 3}); !errors.Is(err, ErrArity) {
		t.Fatalf("Delete wrong arity: err = %v, want ErrArity", err)
	}
	if err := m.Insert("R", relation.Tuple{1}); !errors.Is(err, ErrArity) {
		t.Fatalf("Insert wrong arity: err = %v, want ErrArity", err)
	}
	if got := m.Pending(); got != 0 {
		t.Fatalf("wrong-arity change was buffered: Pending = %d", got)
	}
	// A valid delete still flows through and the rebuild stays healthy.
	if err := m.Delete("R", relation.Tuple{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatalf("flush after valid delete: %v", err)
	}
	it, err := m.Query(relation.Tuple{1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(Drain(it)); got != 0 {
		t.Fatalf("deleted edge still enumerated %d tuples", got)
	}
}

// blockSource serves a fixed result set and signals when the worker picks
// the request up.
type blockSource struct {
	tuples  []relation.Tuple
	started chan struct{}
}

type sliceIter struct {
	tuples []relation.Tuple
	pos    int
}

func (it *sliceIter) Next() (relation.Tuple, bool) {
	if it.pos >= len(it.tuples) {
		return nil, false
	}
	it.pos++
	return it.tuples[it.pos-1], true
}

func (b *blockSource) Query(vb relation.Tuple) Iterator {
	if b.started != nil {
		close(b.started)
		b.started = nil
	}
	return &sliceIter{tuples: b.tuples}
}

// TestServerCancelledIteratorStops locks the deterministic-cancellation
// contract: once the submitting context is done, Next returns false on
// every subsequent call even while served tuples sit in the buffer — the
// done channel is checked with priority, not raced against the result
// channel.
func TestServerCancelledIteratorStops(t *testing.T) {
	tuples := make([]relation.Tuple, 64)
	for i := range tuples {
		tuples[i] = relation.Tuple{relation.Value(i)}
	}
	started := make(chan struct{})
	src := &blockSource{tuples: tuples, started: started}
	srv, err := NewServer(src, 1, WithServerBuffer(len(tuples)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	it, err := srv.SubmitContext(ctx, relation.Tuple{0})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// Give the worker time to fill the (large) buffer, then cancel: the
	// buffered tuples must become unreachable.
	time.Sleep(10 * time.Millisecond)
	cancel()
	for i := 0; i < 32; i++ {
		if _, ok := it.Next(); ok {
			t.Fatal("Next yielded a tuple after cancellation")
		}
	}
}

// TestServerCancelBeforeServe covers the serve-side pre-check it races
// with: a request whose context is cancelled before a worker reaches it
// must come back as an exhausted iterator without the source ever being
// queried.
func TestServerCancelBeforeServe(t *testing.T) {
	src := &blockSource{tuples: []relation.Tuple{{1}}}
	srv, err := NewServer(src, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.SubmitContext(ctx, relation.Tuple{0}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SubmitContext on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestServerCancelUnderLoad hammers SubmitContext with racing
// cancellations; under -race this exercises the serve/Next abort paths
// for ordering violations, and afterwards every iterator must be
// terminated (Next false) rather than wedged.
func TestServerCancelUnderLoad(t *testing.T) {
	tuples := make([]relation.Tuple, 512)
	for i := range tuples {
		tuples[i] = relation.Tuple{relation.Value(i)}
	}
	src := &blockSource{tuples: tuples}
	srv, err := NewServer(src, 4, WithServerBuffer(8))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				it, err := srv.SubmitContext(ctx, relation.Tuple{0})
				if err != nil {
					cancel()
					continue
				}
				n := 0
				for {
					if n == 5 {
						cancel()
					}
					_, ok := it.Next()
					if !ok {
						break
					}
					if n >= 5 {
						t.Error("tuple yielded after cancellation")
						break
					}
					n++
				}
				cancel()
			}
		}()
	}
	wg.Wait()
}
