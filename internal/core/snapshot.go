package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"cqrep/internal/baseline"
	"cqrep/internal/cq"
	"cqrep/internal/decomp"
	"cqrep/internal/join"
	"cqrep/internal/primitive"
	"cqrep/internal/relation"
)

// snapshot.go implements the compile-once / serve-many split: a compiled
// Representation serializes to a self-describing binary snapshot that a
// later process loads without paying the compression cost T_C again. The
// wire format (specified in DESIGN.md, "Snapshot wire format") is
//
//	magic "CQREPS" | version uint16 BE | payload length uint64 BE |
//	payload | CRC-32 (IEEE) of payload, uint32 BE
//
// The payload stores the adorned view, the base relations it references,
// the strategy, and the strategy's expensive precomputed state (trees,
// dictionaries, materialized buckets). Derived state — normalized views,
// sorted base indexes, estimators, bag projections, traversal tables — is
// reconstructed deterministically at load time, so a loaded representation
// enumerates byte-for-byte identically to the freshly compiled one.

const (
	snapshotMagic   = "CQREPS"
	snapshotVersion = 1
	// snapshotHeaderLen is magic + version + payload length.
	snapshotHeaderLen = len(snapshotMagic) + 2 + 8
)

// WriteTo serializes the representation as one snapshot frame. It
// implements io.WriterTo; use the root package's Save for the file-path
// convenience.
func (r *Representation) WriteTo(w io.Writer) (int64, error) {
	var payload bytes.Buffer
	e := relation.NewEncoder(&payload)
	encodeView(e, r.orig)
	e.Database(r.referencedDB())
	e.Uint(uint64(r.strategy))
	e.Int(int64(r.stats.BuildTime))
	switch r.strategy {
	case PrimitiveStrategy:
		r.prim.EncodeTo(e)
	case DecompositionStrategy:
		r.dcmp.EncodeTo(e)
	case MaterializedStrategy:
		r.mat.EncodeTo(e)
	case DirectStrategy, AllBoundStrategy:
		// No precomputed state beyond the base indexes.
	}
	if err := e.Err(); err != nil {
		return 0, err
	}

	var hdr [snapshotHeaderLen]byte
	copy(hdr[:], snapshotMagic)
	binary.BigEndian.PutUint16(hdr[len(snapshotMagic):], snapshotVersion)
	binary.BigEndian.PutUint64(hdr[len(snapshotMagic)+2:], uint64(payload.Len()))
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload.Bytes()))

	var total int64
	for _, chunk := range [][]byte{hdr[:], payload.Bytes(), sum[:]} {
		n, err := w.Write(chunk)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// referencedDB returns the base relations the view's body references — the
// part of the build database a snapshot must carry. Unreferenced relations
// in the original database are deliberately not stored.
func (r *Representation) referencedDB() *relation.Database {
	out := relation.NewDatabase()
	for _, a := range r.view.Body {
		if rel, err := r.db.Relation(a.Relation); err == nil {
			out.Add(rel)
		}
	}
	return out
}

// ReadRepresentation loads a snapshot previously written by WriteTo.
// A stream that does not start with the snapshot magic, fails its
// checksum, is truncated, or carries an inconsistent payload fails with an
// error wrapping ErrBadSnapshot; a version this build does not understand
// fails with ErrSnapshotVersion. On success the loaded representation
// answers queries byte-for-byte identically to the one that was saved;
// Stats().BuildTime reports the original compression time T_C, not the
// (much smaller) load time.
func ReadRepresentation(rd io.Reader) (*Representation, error) {
	var hdr [snapshotHeaderLen]byte
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %w", ErrBadSnapshot, err)
	}
	if string(hdr[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic bytes", ErrBadSnapshot)
	}
	version := binary.BigEndian.Uint16(hdr[len(snapshotMagic):])
	if version != snapshotVersion {
		return nil, fmt.Errorf("%w: snapshot has format version %d, this build reads version %d", ErrSnapshotVersion, version, snapshotVersion)
	}
	payloadLen := binary.BigEndian.Uint64(hdr[len(snapshotMagic)+2:])

	// Copy rather than pre-allocate payloadLen so a corrupt length field
	// fails with a truncation error instead of an OOM-sized allocation.
	var payload bytes.Buffer
	if n, err := io.CopyN(&payload, rd, int64(payloadLen)); err != nil || uint64(n) != payloadLen {
		return nil, fmt.Errorf("%w: truncated payload (%d of %d bytes)", ErrBadSnapshot, payload.Len(), payloadLen)
	}
	var sum [4]byte
	if _, err := io.ReadFull(rd, sum[:]); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %w", ErrBadSnapshot, err)
	}
	if got := crc32.ChecksumIEEE(payload.Bytes()); got != binary.BigEndian.Uint32(sum[:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)
	}

	r, err := decodeRepresentation(relation.NewDecoder(payload.Bytes()))
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	return r, nil
}

// decodeRepresentation rebuilds a representation from a verified payload:
// it re-runs the cheap deterministic front of Build (extend, normalize,
// index) over the stored view and relations, then installs the decoded
// expensive structures instead of recompiling them.
func decodeRepresentation(d *relation.Decoder) (*Representation, error) {
	view, err := decodeView(d)
	if err != nil {
		return nil, err
	}
	db, err := d.Database()
	if err != nil {
		return nil, err
	}
	strategy := Strategy(d.Uint())
	buildTime := time.Duration(d.Int())
	if err := d.Err(); err != nil {
		return nil, err
	}

	full := view.ExtendToFull()
	nv, err := cq.Normalize(full, db)
	if err != nil {
		return nil, err
	}
	inst, err := join.NewInstance(nv)
	if err != nil {
		return nil, err
	}
	r := &Representation{orig: view, view: full, nv: nv, inst: inst, db: db, strategy: strategy}
	r.stats.Strategy = strategy
	r.stats.BuildTime = buildTime

	switch strategy {
	case PrimitiveStrategy:
		s, err := primitive.Decode(d, inst)
		if err != nil {
			return nil, err
		}
		r.prim = s
		st := s.Stats()
		r.stats.Entries = st.DictEntries + st.TreeNodes
		r.stats.Bytes = st.Bytes
		r.stats.Tau = s.Tau()
		r.stats.Alpha = s.Estimator().Alpha
	case DecompositionStrategy:
		s, err := decomp.Decode(d, nv, inst)
		if err != nil {
			return nil, err
		}
		r.dcmp = s
		st := s.Stats()
		r.stats.Entries = st.DictEntries + st.TreeNodes
		r.stats.Bytes = st.Bytes
		r.stats.Width = st.Width
		r.stats.Height = st.Height
	case MaterializedStrategy:
		m, err := baseline.DecodeMaterialized(d, inst)
		if err != nil {
			return nil, err
		}
		r.mat = m
		st := m.Stats()
		r.stats.Entries = st.Tuples
		r.stats.Bytes = st.Bytes
	case DirectStrategy:
		r.direct = baseline.NewDirectEval(inst)
	case AllBoundStrategy:
		if inst.Mu != 0 {
			return nil, fmt.Errorf("AllBound snapshot over a view with %d free variables", inst.Mu)
		}
		r.allBound = baseline.NewAllBound(inst)
	default:
		return nil, fmt.Errorf("unknown strategy %d", int(strategy))
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%d trailing bytes after structure payload", d.Remaining())
	}
	return r, nil
}

// encodeView writes an adorned view: name, head, access pattern, and body
// atoms with their variable/constant terms.
func encodeView(e *relation.Encoder, v *cq.View) {
	e.String(v.Name)
	e.Uint(uint64(len(v.Head)))
	for _, h := range v.Head {
		e.String(h)
	}
	e.String(v.Pattern.String())
	e.Uint(uint64(len(v.Body)))
	for _, a := range v.Body {
		e.String(a.Relation)
		e.Uint(uint64(len(a.Terms)))
		for _, t := range a.Terms {
			e.Bool(t.IsConst)
			if t.IsConst {
				e.Value(t.Const)
			} else {
				e.String(t.Var)
			}
		}
	}
}

// decodeView reads a view written by encodeView and re-validates it.
func decodeView(d *relation.Decoder) (*cq.View, error) {
	v := &cq.View{Name: d.String()}
	nHead := d.Count(1)
	for i := 0; i < nHead; i++ {
		v.Head = append(v.Head, d.String())
	}
	pattern, err := cq.ParseAccessPattern(d.String())
	if err != nil {
		return nil, err
	}
	v.Pattern = pattern
	nBody := d.Count(2)
	for i := 0; i < nBody; i++ {
		a := cq.Atom{Relation: d.String()}
		nTerms := d.Count(1)
		for j := 0; j < nTerms; j++ {
			if d.Bool() {
				a.Terms = append(a.Terms, cq.C(d.Value()))
			} else {
				a.Terms = append(a.Terms, cq.V(d.String()))
			}
		}
		v.Body = append(v.Body, a)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	return v, nil
}
