package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"cqrep/internal/cq"
	"cqrep/internal/relation"
)

// snapshot.go implements the compile-once / serve-many split: a compiled
// Representation serializes to a self-describing binary snapshot that a
// later process loads without paying the compression cost T_C again. The
// wire format (specified in DESIGN.md, "Snapshot wire format") is
//
//	magic "CQREPS" | version uint16 BE | payload length uint64 BE |
//	payload | CRC-32 (IEEE) of payload, uint32 BE
//
// The payload stores the adorned view, the base relations it references,
// the strategy, the shard count, and the backend's expensive precomputed
// state (trees, dictionaries, materialized buckets — or, for a sharded
// representation, one complete nested frame per shard). Derived state —
// normalized views, sorted base indexes, estimators, bag projections,
// traversal tables, the shard partitioner — is reconstructed
// deterministically at load time, so a loaded representation enumerates
// byte-for-byte identically to the freshly compiled one.
//
// Version history: version 1 (PR 3) carried a single backend and no shard
// count; version 2 adds the shard-count field and the sharded composite
// payload. Version-1 snapshots still load.

const (
	snapshotMagic   = "CQREPS"
	snapshotVersion = 2
	// snapshotMinVersion is the oldest format this build still reads.
	snapshotMinVersion = 1
	// snapshotHeaderLen is magic + version + payload length.
	snapshotHeaderLen = len(snapshotMagic) + 2 + 8
)

// WriteTo serializes the representation as one snapshot frame. It
// implements io.WriterTo; use the root package's Save for the file-path
// convenience.
func (r *Representation) WriteTo(w io.Writer) (int64, error) {
	if err := r.ensure(); err != nil { // mmap-loaded: materialize before re-encoding
		return 0, err
	}
	var payload bytes.Buffer
	e := relation.NewEncoder(&payload)
	encodeView(e, r.orig)
	e.Database(r.referencedDB())
	e.Uint(uint64(r.strategy))
	e.Int(int64(r.stats.BuildTime))
	e.Uint(uint64(r.stats.Shards))
	r.be.EncodeTo(e)
	if err := e.Err(); err != nil {
		return 0, err
	}

	var hdr [snapshotHeaderLen]byte
	copy(hdr[:], snapshotMagic)
	binary.BigEndian.PutUint16(hdr[len(snapshotMagic):], snapshotVersion)
	binary.BigEndian.PutUint64(hdr[len(snapshotMagic)+2:], uint64(payload.Len()))
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload.Bytes()))

	var total int64
	for _, chunk := range [][]byte{hdr[:], payload.Bytes(), sum[:]} {
		n, err := w.Write(chunk)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// referencedDB returns the base relations the view's body references — the
// part of the build database a snapshot must carry. Unreferenced relations
// in the original database are deliberately not stored.
func (r *Representation) referencedDB() *relation.Database {
	out := relation.NewDatabase()
	for _, a := range r.view.Body {
		if rel, err := r.db.Relation(a.Relation); err == nil {
			out.Add(rel)
		}
	}
	return out
}

// ReadRepresentation loads a snapshot previously written by WriteTo.
// A stream that does not start with the snapshot magic, fails its
// checksum, is truncated, or carries an inconsistent payload fails with an
// error wrapping ErrBadSnapshot; a version this build does not understand
// fails with ErrSnapshotVersion. On success the loaded representation
// answers queries byte-for-byte identically to the one that was saved;
// Stats().BuildTime reports the original compression time T_C, not the
// (much smaller) load time.
func ReadRepresentation(rd io.Reader) (*Representation, error) {
	var hdr [snapshotHeaderLen]byte
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %w", ErrBadSnapshot, err)
	}
	if string(hdr[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic bytes", ErrBadSnapshot)
	}
	version := binary.BigEndian.Uint16(hdr[len(snapshotMagic):])
	if version < snapshotMinVersion || version > snapshotVersion {
		return nil, fmt.Errorf("%w: snapshot has format version %d, this build reads versions %d..%d", ErrSnapshotVersion, version, snapshotMinVersion, snapshotVersion)
	}
	payloadLen := binary.BigEndian.Uint64(hdr[len(snapshotMagic)+2:])

	// Copy rather than pre-allocate payloadLen so a corrupt length field
	// fails with a truncation error instead of an OOM-sized allocation.
	var payload bytes.Buffer
	if n, err := io.CopyN(&payload, rd, int64(payloadLen)); err != nil || uint64(n) != payloadLen {
		return nil, fmt.Errorf("%w: truncated payload (%d of %d bytes)", ErrBadSnapshot, payload.Len(), payloadLen)
	}
	var sum [4]byte
	if _, err := io.ReadFull(rd, sum[:]); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %w", ErrBadSnapshot, err)
	}
	if got := crc32.ChecksumIEEE(payload.Bytes()); got != binary.BigEndian.Uint32(sum[:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)
	}

	r, err := decodeRepresentation(relation.NewDecoder(payload.Bytes()), version)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	return r, nil
}

// snapshotPrefix is the cheap leading part of every snapshot payload —
// everything before the backend's structure encoding.
type snapshotPrefix struct {
	view      *cq.View
	db        *relation.Database
	strategy  Strategy
	buildTime time.Duration
	shards    int
}

// decodeSnapshotPrefix reads the payload prefix shared by the eager and
// mmap load paths: view, base relations, strategy, build time, and (for
// version >= 2) the shard count.
func decodeSnapshotPrefix(d *relation.Decoder, version uint16) (*snapshotPrefix, error) {
	view, err := decodeView(d)
	if err != nil {
		return nil, err
	}
	db, err := d.Database()
	if err != nil {
		return nil, err
	}
	pre := &snapshotPrefix{view: view, db: db, strategy: Strategy(d.Uint()), buildTime: time.Duration(d.Int()), shards: 1}
	if version >= 2 {
		n := d.Uint()
		// Bounded like every other count in the codec: a sharded payload
		// carries one length-prefixed nested frame (at least a header and
		// checksum) per shard, so a larger count is corruption and must
		// fail before it can size an allocation.
		if n > 1 {
			if n > uint64(d.Remaining()/(snapshotHeaderLen+5)) {
				return nil, fmt.Errorf("shard count %d exceeds remaining payload (%d bytes)", n, d.Remaining())
			}
			pre.shards = int(n)
		}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return pre, nil
}

// shellFromPrefix re-runs the cheap deterministic front of Build (extend,
// normalize, index) over the stored view and relations and installs the
// prefix metadata. The returned representation has no backend yet.
func shellFromPrefix(pre *snapshotPrefix) (*Representation, error) {
	r, err := newShell(pre.view, pre.db)
	if err != nil {
		return nil, err
	}
	r.strategy = pre.strategy
	r.stats.Strategy = pre.strategy
	r.stats.BuildTime = pre.buildTime
	r.stats.Shards = 1
	return r, nil
}

// decodeRepresentation rebuilds a representation from a verified payload:
// it re-runs the cheap deterministic front of Build over the stored view
// and relations, then installs the decoded expensive structures —
// dispatched through the backend registry — instead of recompiling them.
func decodeRepresentation(d *relation.Decoder, version uint16) (*Representation, error) {
	pre, err := decodeSnapshotPrefix(d, version)
	if err != nil {
		return nil, err
	}
	r, err := shellFromPrefix(pre)
	if err != nil {
		return nil, err
	}
	if pre.shards > 1 {
		if err := decodeShardedBackend(d, r, pre.strategy, pre.shards); err != nil {
			return nil, err
		}
	} else {
		spec, ok := backendSpecs[pre.strategy]
		if !ok {
			return nil, fmt.Errorf("unknown strategy %d", int(pre.strategy))
		}
		be, err := spec.decode(d, r)
		if err != nil {
			return nil, err
		}
		r.be = be
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%d trailing bytes after structure payload", d.Remaining())
	}
	return r, nil
}

// decodeShardedBackend reads the sharded composite payload written by
// shardedBackend.EncodeTo: the shard-key variable followed by one complete
// nested snapshot frame per shard. The partitioner is rederived from the
// view and shard count; the stored key variable cross-checks it.
func decodeShardedBackend(d *relation.Decoder, r *Representation, strategy Strategy, shards int) error {
	p := newPartitioner(r.view, shards)
	keyVar := d.String()
	if err := d.Err(); err != nil {
		return err
	}
	if keyVar != p.keyVar {
		return fmt.Errorf("sharded snapshot keyed by %q, view shards by %q", keyVar, p.keyVar)
	}
	subs := make([]*Representation, shards)
	for i := range subs {
		n := d.Count(1)
		blob := d.Raw(n)
		if err := d.Err(); err != nil {
			return err
		}
		sub, err := ReadRepresentation(bytes.NewReader(blob))
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if sub.strategy != strategy {
			return fmt.Errorf("shard %d has strategy %v, composite claims %v", i, sub.strategy, strategy)
		}
		subs[i] = sub
	}
	buildTime := r.stats.BuildTime
	finishSharded(r, p, subs)
	r.stats.BuildTime = buildTime
	return nil
}

// encodeView writes an adorned view: name, head, access pattern, and body
// atoms with their variable/constant terms.
func encodeView(e *relation.Encoder, v *cq.View) {
	e.String(v.Name)
	e.Uint(uint64(len(v.Head)))
	for _, h := range v.Head {
		e.String(h)
	}
	e.String(v.Pattern.String())
	e.Uint(uint64(len(v.Body)))
	for _, a := range v.Body {
		e.String(a.Relation)
		e.Uint(uint64(len(a.Terms)))
		for _, t := range a.Terms {
			e.Bool(t.IsConst)
			if t.IsConst {
				e.Value(t.Const)
			} else {
				e.String(t.Var)
			}
		}
	}
}

// decodeView reads a view written by encodeView and re-validates it.
func decodeView(d *relation.Decoder) (*cq.View, error) {
	v := &cq.View{Name: d.String()}
	nHead := d.Count(1)
	for i := 0; i < nHead; i++ {
		v.Head = append(v.Head, d.String())
	}
	pattern, err := cq.ParseAccessPattern(d.String())
	if err != nil {
		return nil, err
	}
	v.Pattern = pattern
	nBody := d.Count(2)
	for i := 0; i < nBody; i++ {
		a := cq.Atom{Relation: d.String()}
		nTerms := d.Count(1)
		for j := 0; j < nTerms; j++ {
			if d.Bool() {
				a.Terms = append(a.Terms, cq.C(d.Value()))
			} else {
				a.Terms = append(a.Terms, cq.V(d.String()))
			}
		}
		v.Body = append(v.Body, a)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	return v, nil
}
