package core

import (
	"fmt"

	"cqrep/internal/baseline"
	"cqrep/internal/decomp"
	"cqrep/internal/primitive"
	"cqrep/internal/relation"
)

// backend is the uniform strategy surface behind a Representation: every
// compressed representation — the Theorem-1 primitive, the Theorem-2
// decomposed structure, the three baselines, and the sharded composite —
// answers access requests, membership probes, and snapshot serialization
// through this one interface. Adding a representation kind means writing a
// backend and registering its backendSpec; no call site switches on the
// strategy anymore.
//
// Backends are immutable after construction and safe for any number of
// concurrent Query/Exists callers; iterators carry their own state.
type backend interface {
	// Query answers an access request given the bound-variable valuation
	// in head order.
	Query(vb relation.Tuple) Iterator
	// Exists reports whether the access request has any answer. Backends
	// with a native membership check (index probe, bucket lookup) answer
	// without constructing an enumeration.
	Exists(vb relation.Tuple) bool
	// EncodeTo appends the backend's expensive precomputed state to a
	// snapshot payload; the matching backendSpec.decode reverses it.
	EncodeTo(e *relation.Encoder)
	// EnumOrder returns the backend's enumeration order as output tuple
	// positions, most significant first; nil means lexicographic head
	// order. Composite backends compare heads through it when merging
	// independent enumerations.
	EnumOrder() []int
}

// backendSpec is one strategy's entry in the backend registry: how to
// compile the backend from a configured build, and how to decode its
// snapshot payload against a reconstructed representation shell (view,
// normalized view, and base indexes already in place). Both hooks fill in
// the representation's strategy-specific stats.
type backendSpec struct {
	build  func(r *Representation, cfg *config) (backend, error)
	decode func(d *relation.Decoder, r *Representation) (backend, error)
}

// backendSpecs is the registry keyed by strategy tag. The snapshot codec
// and Build both dispatch through it, so a new strategy plugs in here once
// and is immediately compilable, servable, and persistable.
var backendSpecs = map[Strategy]backendSpec{
	PrimitiveStrategy: {
		build: func(r *Representation, cfg *config) (backend, error) { return r.buildPrimitive(cfg) },
		decode: func(d *relation.Decoder, r *Representation) (backend, error) {
			s, err := primitive.Decode(d, r.inst)
			if err != nil {
				return nil, err
			}
			st := s.Stats()
			r.stats.Entries = st.DictEntries + st.TreeNodes
			r.stats.Bytes = st.Bytes
			r.stats.Tau = s.Tau()
			r.stats.Alpha = s.Estimator().Alpha
			return primitiveBackend{s: s}, nil
		},
	},
	DecompositionStrategy: {
		build: func(r *Representation, cfg *config) (backend, error) { return r.buildDecomposition(cfg) },
		decode: func(d *relation.Decoder, r *Representation) (backend, error) {
			s, err := decomp.Decode(d, r.nv, r.inst)
			if err != nil {
				return nil, err
			}
			st := s.Stats()
			r.stats.Entries = st.DictEntries + st.TreeNodes
			r.stats.Bytes = st.Bytes
			r.stats.Width = st.Width
			r.stats.Height = st.Height
			return decompBackend{s: s}, nil
		},
	},
	MaterializedStrategy: {
		build: func(r *Representation, cfg *config) (backend, error) {
			m, err := baseline.Materialize(r.inst)
			if err != nil {
				return nil, err
			}
			st := m.Stats()
			r.stats.Entries = st.Tuples
			r.stats.Bytes = st.Bytes
			return materializedBackend{m: m}, nil
		},
		decode: func(d *relation.Decoder, r *Representation) (backend, error) {
			m, err := baseline.DecodeMaterialized(d, r.inst)
			if err != nil {
				return nil, err
			}
			st := m.Stats()
			r.stats.Entries = st.Tuples
			r.stats.Bytes = st.Bytes
			return materializedBackend{m: m}, nil
		},
	},
	DirectStrategy: {
		build: func(r *Representation, cfg *config) (backend, error) {
			return directBackend{d: baseline.NewDirectEval(r.inst)}, nil
		},
		decode: func(d *relation.Decoder, r *Representation) (backend, error) {
			return directBackend{d: baseline.NewDirectEval(r.inst)}, nil
		},
	},
	AllBoundStrategy: {
		build: func(r *Representation, cfg *config) (backend, error) {
			if r.inst.Mu != 0 {
				return nil, fmt.Errorf("%w: AllBound requires every variable bound, view has %d free", ErrStrategyMismatch, r.inst.Mu)
			}
			return allBoundBackend{a: baseline.NewAllBound(r.inst)}, nil
		},
		decode: func(d *relation.Decoder, r *Representation) (backend, error) {
			if r.inst.Mu != 0 {
				return nil, fmt.Errorf("AllBound snapshot over a view with %d free variables", r.inst.Mu)
			}
			return allBoundBackend{a: baseline.NewAllBound(r.inst)}, nil
		},
	},
}

// deltaChanges splits output changes into the parallel (bound, free)
// slices the structure-level delta entry points take.
func deltaChanges(ocs []outputChange) (vbs, frees []relation.Tuple) {
	vbs = make([]relation.Tuple, len(ocs))
	frees = make([]relation.Tuple, len(ocs))
	for i, oc := range ocs {
		vbs[i] = oc.vb
		frees[i] = oc.free
	}
	return vbs, frees
}

// existsByQuery is the generic membership fallback for backends without a
// native probe: open an enumeration and ask for the first tuple.
func existsByQuery(b backend, vb relation.Tuple) bool {
	_, ok := b.Query(vb).Next()
	return ok
}

// primitiveBackend serves the Theorem-1 delay-balanced structure.
type primitiveBackend struct{ s *primitive.Structure }

func (b primitiveBackend) Query(vb relation.Tuple) Iterator { return b.s.Query(vb) }
func (b primitiveBackend) Exists(vb relation.Tuple) bool    { return existsByQuery(b, vb) }
func (b primitiveBackend) EncodeTo(e *relation.Encoder)     { b.s.EncodeTo(e) }
func (b primitiveBackend) EnumOrder() []int                 { return nil }

// applyDelta rebases the delay-balanced tree onto the new instance,
// invalidating the dictionary 0-entries that net-added outputs falsify
// (see primitive/delta.go). Net deletions need no dictionary repair.
func (b primitiveBackend) applyDelta(shell *Representation, d *outputDelta) (backend, bool, error) {
	addVb, addFree := deltaChanges(d.adds)
	s, ok := b.s.DeltaRebase(shell.inst, addVb, addFree)
	if !ok {
		return nil, false, nil
	}
	st := s.Stats()
	shell.stats.Entries = st.DictEntries + st.TreeNodes
	shell.stats.Bytes = st.Bytes
	shell.stats.Tau = s.Tau()
	shell.stats.Alpha = s.Estimator().Alpha
	return primitiveBackend{s: s}, true, nil
}

func (b primitiveBackend) needsOutputs() bool { return true }

// decompBackend serves the Theorem-2 per-bag structure.
type decompBackend struct{ s *decomp.Structure }

func (b decompBackend) Query(vb relation.Tuple) Iterator { return b.s.Query(vb) }
func (b decompBackend) Exists(vb relation.Tuple) bool    { return existsByQuery(b, vb) }
func (b decompBackend) EncodeTo(e *relation.Encoder)     { b.s.EncodeTo(e) }

// EnumOrder is the decomposition-induced order of Algorithm 5 — the one
// enumeration in the menu that is not lexicographic in head order.
func (b decompBackend) EnumOrder() []int { return b.s.EnumOrder() }

// materializedBackend serves the materialize-and-index baseline. Exists is
// a native bucket lookup — no iterator is constructed.
type materializedBackend struct{ m *baseline.MaterializedView }

func (b materializedBackend) Query(vb relation.Tuple) Iterator { return b.m.Query(vb) }
func (b materializedBackend) Exists(vb relation.Tuple) bool    { return b.m.Contains(vb) }
func (b materializedBackend) EncodeTo(e *relation.Encoder)     { b.m.EncodeTo(e) }
func (b materializedBackend) EnumOrder() []int                 { return nil }

// applyDelta edits the output buckets tuple-by-tuple on a copy-on-write
// clone — exactly the incremental-view-maintenance case the full-view
// single-derivation property makes counting-free.
func (b materializedBackend) applyDelta(shell *Representation, d *outputDelta) (backend, bool, error) {
	delVb, delFree := deltaChanges(d.dels)
	addVb, addFree := deltaChanges(d.adds)
	m, err := b.m.ApplyOutputDelta(shell.inst, delVb, delFree, addVb, addFree)
	if err != nil {
		return nil, false, err
	}
	st := m.Stats()
	shell.stats.Entries = st.Tuples
	shell.stats.Bytes = st.Bytes
	return materializedBackend{m: m}, true, nil
}

func (b materializedBackend) needsOutputs() bool { return true }

// directBackend evaluates every request from scratch; it stores no
// precomputed state, so its snapshot payload is empty.
type directBackend struct{ d *baseline.DirectEval }

func (b directBackend) Query(vb relation.Tuple) Iterator { return b.d.Query(vb) }
func (b directBackend) Exists(vb relation.Tuple) bool    { return existsByQuery(b, vb) }
func (b directBackend) EncodeTo(e *relation.Encoder)     {}
func (b directBackend) EnumOrder() []int                 { return nil }

// allBoundBackend answers boolean views. Exists is a native constant-probe
// membership check (Proposition 1) — no iterator is constructed.
type allBoundBackend struct{ a *baseline.AllBound }

func (b allBoundBackend) Query(vb relation.Tuple) Iterator { return b.a.Query(vb) }
func (b allBoundBackend) Exists(vb relation.Tuple) bool    { return b.a.Contains(vb) }
func (b allBoundBackend) EncodeTo(e *relation.Encoder)     {}
func (b allBoundBackend) EnumOrder() []int                 { return nil }

// applyDelta rewraps the new shell's base indexes: AllBound stores nothing
// beyond them, so the "delta" is a constant-time rebind — no output delta
// is ever computed (needsOutputs is false).
func (b allBoundBackend) applyDelta(shell *Representation, _ *outputDelta) (backend, bool, error) {
	if shell.inst.Mu != 0 {
		return nil, false, nil
	}
	return allBoundBackend{a: baseline.NewAllBound(shell.inst)}, true, nil
}

func (b allBoundBackend) needsOutputs() bool { return false }
