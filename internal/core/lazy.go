package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"cqrep/internal/relation"
)

// lazy.go implements the mmap-backed snapshot load path: OpenRepresentationMmap
// maps a snapshot file and returns in O(file-open) time, deferring all
// decoding — base relations, indexes, backend structures — to the first
// access. For version-2 sharded snapshots the laziness is per shard: the
// composite materializes only its routing metadata, and each shard's
// nested frame (a zero-copy subslice of the mapping) decodes independently
// on first touch, so a bound-key access request pays for exactly one
// shard. A node can therefore host thousands of snapshot-backed views and
// pay decode cost only for the ones that receive traffic.
//
// Every decoder copies what it keeps (strings, tuples, rows), so no
// materialized structure aliases the mapping. Once a lazy frame has fully
// decoded it drops its reference to the mapping; when all frames of a file
// have materialized the mapping itself is unmapped by a finalizer.

// mmapRef owns one mapped (or, on platforms without mmap, read) snapshot
// file. Lazy frames hold it to keep the mapping alive while their payload
// subslices are still undecoded; a finalizer unmaps it once the last
// holder drops away.
type mmapRef struct {
	data   []byte
	mapped bool // true when data came from syscall.Mmap and needs munmap
}

// lazySnapshot is the deferred-decode state of a Representation loaded by
// OpenRepresentationMmap: the undecoded payload (a subslice of the
// mapping), its expected checksum, and the one-shot decode guard.
// Field order packs the sub-word fields (sum rides in once's alignment
// tail; version and checkStrategy share the final word): 80 bytes instead
// of the 88 a declaration-order layout costs.
type lazySnapshot struct {
	once    sync.Once
	sum     uint32
	err     error
	payload []byte
	ref     *mmapRef // keeps the mapping alive until materialized
	// wantStrategy cross-checks a shard frame against the composite's
	// declared strategy; checkStrategy gates it (outer frames skip it).
	wantStrategy  Strategy
	version       uint16
	checkStrategy bool
}

// ensure materializes a lazily-loaded representation, decoding the mapped
// payload into r exactly once. It is a no-op for eagerly built or loaded
// representations, and safe for concurrent callers: the first caller
// decodes, everyone else blocks until the verdict — success or a sticky
// error — is in.
func (r *Representation) ensure() error {
	l := r.lazy
	if l == nil {
		return nil
	}
	l.once.Do(func() {
		l.err = l.materialize(r)
		// Drop the payload and mapping reference either way: a failed
		// decode is sticky, so the bytes are never needed again.
		l.payload = nil
		l.ref = nil
	})
	return l.err
}

// materialize decodes the lazy payload into dst. Unsharded payloads are
// checksum-verified in full before their backend decodes; sharded
// composites skip the outer checksum — verifying it would touch every
// nested frame, defeating per-shard laziness — and rely on each shard
// frame's own CRC, verified when that shard first materializes.
func (l *lazySnapshot) materialize(dst *Representation) error {
	d := relation.NewDecoder(l.payload)
	pre, err := decodeSnapshotPrefix(d, l.version)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	if pre.shards <= 1 {
		if crc32.ChecksumIEEE(l.payload) != l.sum {
			return fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)
		}
	}
	if l.checkStrategy && pre.strategy != l.wantStrategy {
		return fmt.Errorf("%w: shard has strategy %v, composite claims %v", ErrBadSnapshot, pre.strategy, l.wantStrategy)
	}
	shell, err := shellFromPrefix(pre)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	// orig and view may have been decoded eagerly at open (the registry
	// needs names before first touch); leave them in place so concurrent
	// readers of those fields never observe a rewrite.
	if dst.orig == nil {
		dst.orig, dst.view = shell.orig, shell.view
	}
	dst.nv, dst.inst, dst.db = shell.nv, shell.inst, shell.db
	dst.strategy = pre.strategy
	dst.stats = shell.stats

	if pre.shards > 1 {
		if err := decodeLazySharded(d, dst, pre, l.ref); err != nil {
			return err
		}
	} else {
		spec, ok := backendSpecs[pre.strategy]
		if !ok {
			return fmt.Errorf("%w: unknown strategy %d", ErrBadSnapshot, int(pre.strategy))
		}
		be, err := spec.decode(d, dst)
		if err != nil {
			return fmt.Errorf("%w: %w", ErrBadSnapshot, err)
		}
		dst.be = be
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes after structure payload", ErrBadSnapshot, d.Remaining())
	}
	return nil
}

// decodeLazySharded installs the sharded composite backend with one lazy
// sub-representation per nested frame: routing metadata (partitioner and
// shard-key check) materializes now, the frames themselves — zero-copy
// subslices of the mapping — decode independently on first touch.
func decodeLazySharded(d *relation.Decoder, r *Representation, pre *snapshotPrefix, ref *mmapRef) error {
	p := newPartitioner(r.view, pre.shards)
	keyVar := d.String()
	if err := d.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	if keyVar != p.keyVar {
		return fmt.Errorf("%w: sharded snapshot keyed by %q, view shards by %q", ErrBadSnapshot, keyVar, p.keyVar)
	}
	subs := make([]*Representation, pre.shards)
	for i := range subs {
		n := d.Count(1)
		frame := d.Raw(n)
		if err := d.Err(); err != nil {
			return fmt.Errorf("%w: shard %d: %w", ErrBadSnapshot, i, err)
		}
		sub, err := newLazyFromFrame(frame, ref, pre.strategy)
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		subs[i] = sub
	}
	r.be = &shardedBackend{parts: p, subs: subs}
	r.stats.Shards = p.n
	// Structure footprints (Entries, Bytes, τ, α, width, height) live in
	// the undecoded shard frames; an mmap-loaded composite reports them as
	// zero rather than forcing every shard to materialize.
	return nil
}

// newLazyFromFrame wraps one complete snapshot frame (header, payload,
// checksum — a subslice of the mapping) as an undecoded representation.
// Only the frame header is validated now; payload checksum and content
// wait for first touch.
func newLazyFromFrame(frame []byte, ref *mmapRef, want Strategy) (*Representation, error) {
	payload, sum, version, err := splitFrame(frame)
	if err != nil {
		return nil, err
	}
	if len(frame) != snapshotHeaderLen+len(payload)+4 {
		return nil, fmt.Errorf("%w: %d trailing bytes after frame", ErrBadSnapshot, len(frame)-snapshotHeaderLen-len(payload)-4)
	}
	return &Representation{lazy: &lazySnapshot{
		payload: payload, sum: sum, version: version, ref: ref,
		wantStrategy: want, checkStrategy: true,
	}}, nil
}

// splitFrame validates a snapshot frame header in place and returns the
// payload subslice, its expected checksum, and the format version. Nothing
// is copied and no checksum is computed.
func splitFrame(frame []byte) (payload []byte, sum uint32, version uint16, err error) {
	if len(frame) < snapshotHeaderLen+4 {
		return nil, 0, 0, fmt.Errorf("%w: short header", ErrBadSnapshot)
	}
	if string(frame[:len(snapshotMagic)]) != snapshotMagic {
		return nil, 0, 0, fmt.Errorf("%w: bad magic bytes", ErrBadSnapshot)
	}
	version = binary.BigEndian.Uint16(frame[len(snapshotMagic):])
	if version < snapshotMinVersion || version > snapshotVersion {
		return nil, 0, 0, fmt.Errorf("%w: snapshot has format version %d, this build reads versions %d..%d", ErrSnapshotVersion, version, snapshotMinVersion, snapshotVersion)
	}
	payloadLen := binary.BigEndian.Uint64(frame[len(snapshotMagic)+2:])
	if payloadLen > uint64(len(frame)-snapshotHeaderLen-4) {
		return nil, 0, 0, fmt.Errorf("%w: truncated payload (%d of %d bytes)", ErrBadSnapshot, len(frame)-snapshotHeaderLen-4, payloadLen)
	}
	payload = frame[snapshotHeaderLen : snapshotHeaderLen+int(payloadLen)]
	sum = binary.BigEndian.Uint32(frame[snapshotHeaderLen+int(payloadLen):])
	return payload, sum, version, nil
}

// OpenRepresentationMmap maps the snapshot file at path and returns a
// representation whose decoding is deferred to first access: the call
// itself validates only the frame header and the (cheap) stored view, so
// it is O(file-open) regardless of snapshot size. The error contract
// matches ReadRepresentation, except that payload-level failures — a
// checksum mismatch, a corrupt structure — surface at first touch instead:
// Query returns an iterator whose IterErr wraps ErrBadSnapshot, Bind
// returns the error directly, and Exists reports false.
//
// The returned representation answers byte-for-byte identically to an
// eagerly loaded one. For sharded snapshots, each shard's nested frame
// decodes independently when an access request first routes to it.
func OpenRepresentationMmap(path string) (*Representation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // the mapping outlives the descriptor
	ref, err := mmapFile(f)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %w", ErrBadSnapshot, path, err)
	}
	payload, sum, version, err := splitFrame(ref.data)
	if err != nil {
		return nil, err
	}
	if extra := len(ref.data) - snapshotHeaderLen - len(payload) - 4; extra != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after snapshot frame", ErrBadSnapshot, extra)
	}
	// Decode the stored view eagerly: registries key on view names, and the
	// view is a few strings at the head of the payload — far cheaper than
	// the relations and structures behind it.
	view, err := decodeView(relation.NewDecoder(payload))
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	return &Representation{
		orig: view,
		view: view.ExtendToFull(),
		lazy: &lazySnapshot{payload: payload, sum: sum, version: version, ref: ref},
	}, nil
}

// errIterator is the empty stream carrying a terminal error — how the
// no-error Query surface reports a lazy representation that failed to
// materialize (see IterErr).
type errIterator struct{ err error }

func (it errIterator) Next() (relation.Tuple, bool) { return nil, false }
func (it errIterator) Err() error                   { return it.err }
