package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"cqrep/internal/cq"
	"cqrep/internal/relation"
	"cqrep/internal/workload"
)

// concurrencyFixture builds a triangle view instance with enough data that
// both strategies exercise real tree/dictionary structure, plus a sample of
// bound valuations (many with non-empty answers).
func concurrencyFixture(t testing.TB, edges int) (*cq.View, *relation.Database, []relation.Tuple) {
	t.Helper()
	db := workload.TriangleDB(7, edges/12, edges/2)
	view := cq.MustParse("V[bfb](x, y, z) :- R(x, y), R(y, z), R(z, x)")
	r, err := db.Relation("R")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	vbs := make([]relation.Tuple, 48)
	for i := range vbs {
		row := r.Row(rng.Intn(r.Len()))
		vbs[i] = relation.Tuple{row[0], row[1]}
	}
	return view, db, vbs
}

// drainAll maps each valuation to its drained result.
func drainAll(rep *Representation, vbs []relation.Tuple) [][]relation.Tuple {
	out := make([][]relation.Tuple, len(vbs))
	for i, vb := range vbs {
		out[i] = Drain(rep.Query(vb))
	}
	return out
}

// TestConcurrentQuery hammers one Representation from many goroutines and
// checks every drained stream against the sequential baseline. Run under
// -race this is the concurrency-correctness gate for the serving path.
func TestConcurrentQuery(t *testing.T) {
	view, db, vbs := concurrencyFixture(t, 1200)
	for _, strat := range []Strategy{PrimitiveStrategy, DecompositionStrategy} {
		t.Run(strat.String(), func(t *testing.T) {
			var opts []Option
			opts = append(opts, WithStrategy(strat))
			if strat == PrimitiveStrategy {
				opts = append(opts, WithTau(8))
			}
			rep, err := Build(view, db, opts...)
			if err != nil {
				t.Fatal(err)
			}
			want := drainAll(rep, vbs)

			const goroutines = 8
			const rounds = 4
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for round := 0; round < rounds; round++ {
						// Stagger start positions so goroutines hit
						// different valuations at the same instant.
						for k := range vbs {
							i := (k + g*7) % len(vbs)
							got := Drain(rep.Query(vbs[i]))
							if !reflect.DeepEqual(got, want[i]) {
								errs <- fmt.Errorf("goroutine %d: vb %v: got %v, want %v", g, vbs[i], got, want[i])
								return
							}
							if rep.Exists(vbs[i]) != (len(want[i]) > 0) {
								errs <- fmt.Errorf("goroutine %d: Exists(%v) disagrees with Query", g, vbs[i])
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

// TestBuildWorkersDeterministic checks the tentpole invariant: Build with
// one worker and with eight produces identical structures — same size
// counters, same parameters, and the same enumeration, tuple for tuple.
func TestBuildWorkersDeterministic(t *testing.T) {
	view, db, vbs := concurrencyFixture(t, 900)
	for _, strat := range []Strategy{PrimitiveStrategy, DecompositionStrategy} {
		t.Run(strat.String(), func(t *testing.T) {
			mk := func(workers int) *Representation {
				opts := []Option{WithStrategy(strat), WithWorkers(workers)}
				if strat == PrimitiveStrategy {
					opts = append(opts, WithTau(6))
				}
				rep, err := Build(view, db, opts...)
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			seq := mk(1)
			par := mk(8)

			ss, ps := seq.Stats(), par.Stats()
			ss.BuildTime, ps.BuildTime = 0, 0 // wall-clock is the only legal difference
			if ss != ps {
				t.Fatalf("stats diverge across worker counts:\n  1 worker: %+v\n  8 workers: %+v", ss, ps)
			}
			for _, vb := range vbs {
				a, b := Drain(seq.Query(vb)), Drain(par.Query(vb))
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("enumeration diverges for vb %v:\n  1 worker: %v\n  8 workers: %v", vb, a, b)
				}
			}
		})
	}
}

// TestMaintainedConcurrent hammers a Maintained view with concurrent
// readers and writers: readers must always observe a consistent snapshot
// (every answer drawn from some prefix of the applied batches), and after
// Flush the final state must match a from-scratch build.
func TestMaintainedConcurrent(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.NewRelation("R", 2)
	for i := 0; i < 30; i++ {
		r.MustInsert(relation.Value(i), relation.Value((i+1)%30))
	}
	db.Add(r)
	view := cq.MustParse("V[bf](x, y) :- R(x, y)")
	m, err := NewMaintained(view, db, 0.05, WithTau(1))
	if err != nil {
		t.Fatal(err)
	}

	const writers = 2
	const readers = 6
	const perWriter = 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				v := relation.Value(1000 + w*perWriter + i)
				if err := m.Insert("R", relation.Tuple{v, v + 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				vb := relation.Tuple{relation.Value(i % 30)}
				it, err := m.Query(vb)
				if err != nil {
					t.Error(err)
					return
				}
				// Base edges are never deleted, so every snapshot answers
				// the original requests identically.
				if got := Drain(it); len(got) != 1 || got[0][0] != relation.Value((i%30+1)%30) {
					t.Errorf("reader %d: Query(%v) = %v", g, vb, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if m.Pending() != 0 {
		t.Fatalf("pending after flush = %d", m.Pending())
	}
	// Every written edge must now be visible.
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			v := relation.Value(1000 + w*perWriter + i)
			it, err := m.Query(relation.Tuple{v})
			if err != nil {
				t.Fatal(err)
			}
			if got := Drain(it); len(got) != 1 || got[0][0] != v+1 {
				t.Fatalf("lost write: Query(%v) = %v", v, got)
			}
		}
	}
	if m.Rebuilds() == 0 {
		t.Fatal("expected at least one rebuild")
	}
}

// TestServerBatch verifies the batching front end-to-end: per-request
// iterators carry exactly the tuples of a direct query, in order, under
// concurrent submission from several goroutines.
func TestServerBatch(t *testing.T) {
	view, db, vbs := concurrencyFixture(t, 900)
	rep, err := Build(view, db)
	if err != nil {
		t.Fatal(err)
	}
	want := drainAll(rep, vbs)

	srv, err := NewServer(rep, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Batch submission.
	its := srv.QueryBatch(vbs)
	for i, it := range its {
		if got := Drain(it); !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("batch request %d: got %v, want %v", i, got, want[i])
		}
	}

	// Concurrent submitters sharing one server.
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := range vbs {
				i := (k + g*5) % len(vbs)
				if got := Drain(srv.Submit(vbs[i])); !reflect.DeepEqual(got, want[i]) {
					t.Errorf("goroutine %d: request %d diverged", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := srv.Stats()
	wantReqs := uint64(len(vbs) * 7) // one batch + six submitters
	if st.Requests != wantReqs {
		t.Fatalf("stats requests = %d, want %d", st.Requests, wantReqs)
	}
	if st.Workers != 4 {
		t.Fatalf("stats workers = %d, want 4", st.Workers)
	}
}

// TestServerClose checks shutdown behavior: Close is idempotent, undrained
// iterators terminate instead of hanging, and post-Close submissions come
// back exhausted.
func TestServerClose(t *testing.T) {
	view, db, vbs := concurrencyFixture(t, 600)
	rep, err := Build(view, db)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(rep, 2)
	if err != nil {
		t.Fatal(err)
	}
	its := srv.QueryBatch(vbs)
	_ = its // deliberately undrained
	srv.Close()
	srv.Close()
	for _, it := range its {
		// Must terminate (possibly after some buffered tuples).
		for {
			if _, ok := it.Next(); !ok {
				break
			}
		}
	}
	if got := Drain(srv.Submit(vbs[0])); len(got) != 0 {
		t.Fatalf("post-Close Submit returned %d tuples", len(got))
	}
}
