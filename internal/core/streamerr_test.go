package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"cqrep/internal/cq"
	"cqrep/internal/relation"
)

// streamerr_test.go pins the terminal-error contract of Server result
// streams: a stream that stops yielding tuples must say why — complete,
// cancelled, server closed, or the underlying source failed mid-stream —
// instead of silently ending (the historical behavior made a truncated
// enumeration indistinguishable from a finished one).

// failSource is a QuerySource whose enumeration yields n tuples and then
// fails with err — the shape of a snapshot-backed source whose backing
// store breaks mid-stream.
type failSource struct {
	n   int
	err error
}

type failIter struct {
	i, n int
	err  error
}

func (s *failSource) Query(vb relation.Tuple) Iterator {
	return &failIter{n: s.n, err: s.err}
}

func (it *failIter) Next() (relation.Tuple, bool) {
	if it.i >= it.n {
		return nil, false
	}
	it.i++
	return relation.Tuple{relation.Value(it.i)}, true
}

// Err implements the optional terminal-error surface a Server propagates.
func (it *failIter) Err() error {
	if it.i >= it.n {
		return it.err
	}
	return nil
}

func TestServerStreamSurfacesSourceError(t *testing.T) {
	boom := errors.New("backing store failed mid-stream")
	srv, err := NewServer(&failSource{n: 3, err: boom}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	it, err := srv.SubmitContext(context.Background(), relation.Tuple{})
	if err != nil {
		t.Fatal(err)
	}
	got := Drain(it)
	if len(got) != 3 {
		t.Fatalf("drained %d tuples, want 3", len(got))
	}
	if terr := IterErr(it); !errors.Is(terr, boom) {
		t.Fatalf("IterErr = %v, want the source's error %v", terr, boom)
	}
}

func TestServerStreamCleanEndHasNoError(t *testing.T) {
	srv, err := NewServer(&failSource{n: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	it, err := srv.SubmitContext(ctx, relation.Tuple{})
	if err != nil {
		t.Fatal(err)
	}
	if got := Drain(it); len(got) != 2 {
		t.Fatalf("drained %d tuples, want 2", len(got))
	}
	if terr := IterErr(it); terr != nil {
		t.Fatalf("IterErr after clean end = %v, want nil", terr)
	}
	// A cancellation after the stream already completed must not rewrite
	// history: the enumeration was delivered in full.
	cancel()
	if terr := IterErr(it); terr != nil {
		t.Fatalf("IterErr after post-completion cancel = %v, want nil", terr)
	}
}

func TestServerStreamCancellationError(t *testing.T) {
	srv, err := NewServer(&failSource{n: 1 << 20}, 1, WithServerBuffer(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	it, err := srv.SubmitContext(ctx, relation.Tuple{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.Next(); !ok {
		t.Fatal("no first tuple before cancellation")
	}
	cancel()
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	if terr := IterErr(it); !errors.Is(terr, context.Canceled) {
		t.Fatalf("IterErr after cancel = %v, want context.Canceled", terr)
	}
}

func TestServerStreamCloseError(t *testing.T) {
	srv, err := NewServer(&failSource{n: 1 << 20}, 1, WithServerBuffer(1))
	if err != nil {
		t.Fatal(err)
	}
	it, err := srv.SubmitContext(context.Background(), relation.Tuple{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.Next(); !ok {
		t.Fatal("no first tuple before close")
	}
	srv.Close() // aborts the in-flight enumeration
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	if terr := IterErr(it); !errors.Is(terr, ErrClosed) {
		t.Fatalf("IterErr after close = %v, want ErrClosed", terr)
	}
}

func TestServerStreamUnservedRequestReportsClosed(t *testing.T) {
	// One worker wedged on an undrained huge request; a second queued
	// request is never served before Close and must report ErrClosed, not
	// pose as an empty result.
	srv, err := NewServer(&failSource{n: 1 << 20}, 1, WithServerBuffer(1))
	if err != nil {
		t.Fatal(err)
	}
	first, err := srv.SubmitContext(context.Background(), relation.Tuple{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := first.Next(); !ok {
		t.Fatal("no first tuple")
	}
	second, err := srv.SubmitContext(context.Background(), relation.Tuple{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if got := Drain(second); len(got) != 0 {
		t.Fatalf("unserved request yielded %d tuples, want 0", len(got))
	}
	if terr := IterErr(second); !errors.Is(terr, ErrClosed) {
		t.Fatalf("IterErr of unserved request = %v, want ErrClosed", terr)
	}
}

func TestIterErrNonReportingIterator(t *testing.T) {
	if terr := IterErr(&failIter{n: 0}); terr != nil {
		t.Fatalf("IterErr = %v", terr)
	}
	var plain Iterator = &SliceBackedIter{}
	if terr := IterErr(plain); terr != nil {
		t.Fatalf("IterErr on plain iterator = %v, want nil", terr)
	}
}

// SliceBackedIter is a minimal Iterator without an Err method.
type SliceBackedIter struct{ ts []relation.Tuple }

func (s *SliceBackedIter) Next() (relation.Tuple, bool) {
	if len(s.ts) == 0 {
		return nil, false
	}
	t := s.ts[0]
	s.ts = s.ts[1:]
	return t, true
}

func TestServerSubmitArgs(t *testing.T) {
	view := cq.MustParse("V[bf](x, y) :- R(x, y)")
	db := relation.NewDatabase()
	r := relation.NewRelation("R", 2)
	r.MustInsert(1, 10)
	r.MustInsert(1, 11)
	r.MustInsert(2, 20)
	db.Add(r)
	rep, err := Build(view, db)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(rep, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	it, err := srv.SubmitArgs(context.Background(), map[string]relation.Value{"x": 1})
	if err != nil {
		t.Fatal(err)
	}
	got := Drain(it)
	want := Drain(rep.Query(relation.Tuple{1}))
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("SubmitArgs = %v, want %v", got, want)
	}
	if terr := IterErr(it); terr != nil {
		t.Fatalf("IterErr = %v", terr)
	}

	if _, err := srv.SubmitArgs(context.Background(), map[string]relation.Value{"nope": 1}); !errors.Is(err, ErrBadBinding) {
		t.Fatalf("bad name error = %v, want ErrBadBinding", err)
	}

	plain, err := NewServer(&failSource{n: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := plain.SubmitArgs(context.Background(), map[string]relation.Value{"x": 1}); !errors.Is(err, ErrBadBinding) {
		t.Fatalf("non-binder source error = %v, want ErrBadBinding", err)
	}
}
