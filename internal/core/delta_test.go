package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"cqrep/internal/cq"
	"cqrep/internal/relation"
)

// encodeStream drains one access request into a comparable byte string.
func encodeStream(r *Representation, vb relation.Tuple) string {
	var buf bytes.Buffer
	it := r.Query(vb)
	for {
		t, ok := it.Next()
		if !ok {
			return buf.String()
		}
		buf.Write(t.AppendEncode(nil))
	}
}

// boundSpace enumerates a small valuation grid to compare reps over.
func boundSpace(nb int, lo, hi relation.Value) []relation.Tuple {
	if nb == 0 {
		return []relation.Tuple{{}}
	}
	var out []relation.Tuple
	var rec func(prefix relation.Tuple)
	rec = func(prefix relation.Tuple) {
		if len(prefix) == nb {
			out = append(out, prefix.Clone())
			return
		}
		for v := lo; v <= hi; v++ {
			rec(append(prefix, v))
		}
	}
	rec(relation.Tuple{})
	return out
}

// requireIdentical asserts got enumerates byte-for-byte like want over vbs.
func requireIdentical(t *testing.T, got, want *Representation, vbs []relation.Tuple) {
	t.Helper()
	for _, vb := range vbs {
		if g, w := encodeStream(got, vb), encodeStream(want, vb); g != w {
			t.Fatalf("stream diverges at vb=%v:\n got %d bytes\nwant %d bytes", vb, len(g), len(w))
		}
		if g, w := got.Exists(vb), want.Exists(vb); g != w {
			t.Fatalf("Exists(%v) = %v, want %v", vb, g, w)
		}
	}
}

// churnMaintained runs a deterministic churn script against a Maintained
// and mirrors it into a plain database, returning the mirror.
func churnMaintained(t *testing.T, m *Maintained, seed int64, steps int) *relation.Database {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mirror := m.db.Clone()
	r, _ := mirror.Relation("R")
	for i := 0; i < steps; i++ {
		a := relation.Value(rng.Intn(8))
		b := relation.Value(rng.Intn(8))
		if rng.Intn(3) == 0 {
			if err := m.Delete("R", relation.Tuple{a, b}); err != nil {
				t.Fatal(err)
			}
			r.Delete(relation.Tuple{a, b})
		} else {
			if err := m.Insert("R", relation.Tuple{a, b}); err != nil {
				t.Fatal(err)
			}
			if err := r.Insert(relation.Tuple{a, b}); err != nil {
				t.Fatal(err)
			}
		}
		if rng.Intn(5) == 0 {
			if err := m.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	return mirror
}

func pathDB(seed int64, n int) *relation.Database {
	rng := rand.New(rand.NewSource(seed))
	db := relation.NewDatabase()
	r := relation.NewRelation("R", 2)
	for i := 0; i < n; i++ {
		r.MustInsert(relation.Value(rng.Intn(8)), relation.Value(rng.Intn(8)))
	}
	db.Add(r)
	return db
}

// TestDeltaApplyStrategies churns each delta-capable strategy and demands
// byte-identity with a fresh compile after every flush, plus evidence the
// delta path (not a recompile) did the work.
func TestDeltaApplyStrategies(t *testing.T) {
	cases := []struct {
		name    string
		view    string
		opts    []Option
		wantUse bool // delta applies must be > 0
	}{
		{"materialized", "V[bf](x, y) :- R(x, p), R(p, y)", []Option{WithStrategy(MaterializedStrategy)}, true},
		{"allbound", "V[bb](x, y) :- R(x, y)", []Option{WithStrategy(AllBoundStrategy)}, true},
		{"primitive", "V[bf](x, y) :- R(x, p), R(p, y)", []Option{WithStrategy(PrimitiveStrategy), WithTau(2)}, true},
		{"direct-fallback", "V[bf](x, y) :- R(x, p), R(p, y)", []Option{WithStrategy(DirectStrategy)}, false},
		{"decomp-fallback", "V[bf](x, y) :- R(x, p), R(p, y)", []Option{WithStrategy(DecompositionStrategy)}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			view := cq.MustParse(tc.view)
			m, err := NewMaintained(view, pathDB(7, 40), 0.5, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			mirror := churnMaintained(t, m, 11, 120)
			fresh, err := Build(view, mirror, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, m.Rep(), fresh, boundSpace(len(fresh.BoundNames()), 0, 8))
			if tc.wantUse && m.DeltaApplies() == 0 {
				t.Fatalf("strategy %s never took the delta path (rebuilds=%d)", tc.name, m.Rebuilds())
			}
			if !tc.wantUse && m.DeltaApplies() != 0 {
				t.Fatalf("strategy %s unexpectedly delta-applied", tc.name)
			}
		})
	}
}

// TestDeltaApplySharded checks the per-dirty-shard capability probe: a
// sharded materialized composite must delta-apply shard-locally and stay
// byte-identical to the fresh sharded and unsharded compiles. The churned
// relation R carries the shard variable in its only atom, so churn stays
// shard-local (S is replicated but never changes; a self-join like
// R(x,p),R(p,y) would alias R into a replicated copy and correctly force
// full rebuilds instead).
func TestDeltaApplySharded(t *testing.T) {
	view := cq.MustParse("V[bf](x, y) :- R(x, p), S(p, y)")
	opts := []Option{WithStrategy(MaterializedStrategy), WithShards(4)}
	db := pathDB(7, 40)
	s := relation.NewRelation("S", 2)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 40; i++ {
		s.MustInsert(relation.Value(rng.Intn(8)), relation.Value(rng.Intn(8)))
	}
	db.Add(s)
	m, err := NewMaintained(view, db, 0.5, opts...)
	if err != nil {
		t.Fatal(err)
	}
	mirror := churnMaintained(t, m, 13, 120)
	fresh, err := Build(view, mirror, opts...)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Build(view, mirror.Clone(), WithStrategy(MaterializedStrategy))
	if err != nil {
		t.Fatal(err)
	}
	vbs := boundSpace(1, 0, 8)
	requireIdentical(t, m.Rep(), fresh, vbs)
	requireIdentical(t, m.Rep(), flat, vbs)
	if m.DeltaApplies() == 0 {
		t.Fatal("sharded composite never delta-applied a dirty shard")
	}
	if got := m.Rep().Stats().Shards; got != 4 {
		t.Fatalf("maintained rep has %d shards, want 4", got)
	}
}

// TestDeltaApplyDisabled pins the WithDeltaApply(false) escape hatch: same
// final state, zero delta applies.
func TestDeltaApplyDisabled(t *testing.T) {
	view := cq.MustParse("V[bf](x, y) :- R(x, p), R(p, y)")
	opts := []Option{WithStrategy(MaterializedStrategy), WithDeltaApply(false)}
	m, err := NewMaintained(view, pathDB(7, 40), 0.5, opts...)
	if err != nil {
		t.Fatal(err)
	}
	mirror := churnMaintained(t, m, 17, 60)
	fresh, err := Build(view, mirror, WithStrategy(MaterializedStrategy))
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, m.Rep(), fresh, boundSpace(1, 0, 8))
	if m.DeltaApplies() != 0 {
		t.Fatalf("delta path used despite WithDeltaApply(false): %d", m.DeltaApplies())
	}
	if m.Rebuilds() == 0 {
		t.Fatal("no rebuilds happened at all")
	}
}

// TestRebuildBatchSnapshotIndependent is the aliasing regression test:
// rebuildBatch's snapshot of the pending batch must be unaffected by
// anything that later mutates the live pending backing array. The hook
// overwrites the buffered changes in place right after the snapshot is
// taken; with an aliased (uncopied) batch the rebuild would apply the
// overwritten garbage instead of the buffered updates.
func TestRebuildBatchSnapshotIndependent(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.NewRelation("R", 2)
	r.MustInsert(1, 2)
	db.Add(r)
	view := cq.MustParse("V[bf](x, y) :- R(x, y)")
	m, err := NewMaintained(view, db, 10, WithStrategy(MaterializedStrategy))
	if err != nil {
		t.Fatal(err)
	}
	m.testHookBatchTaken = func() {
		m.mu.Lock()
		for i := range m.pending {
			m.pending[i] = change{seq: m.pending[i].seq, rel: "R", tuple: relation.Tuple{99, 99}, delete: false}
		}
		m.mu.Unlock()
	}
	if err := m.Insert("R", relation.Tuple{5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	it, _ := m.Query(relation.Tuple{5})
	if got := Drain(it); len(got) != 1 || got[0][0] != 6 {
		t.Fatalf("batch snapshot was corrupted by concurrent mutation: query(5) = %v", got)
	}
	it, _ = m.Query(relation.Tuple{99})
	if got := Drain(it); len(got) != 0 {
		t.Fatalf("overwritten garbage leaked into the rebuild: query(99) = %v", got)
	}
}

// TestBulkLoadEmptyMaintained pins the staleness floor: bulk-loading an
// empty database must not recompile once per tuple (budget fraction·|D|
// is 0 at the start).
func TestBulkLoadEmptyMaintained(t *testing.T) {
	db := relation.NewDatabase()
	db.Add(relation.NewRelation("R", 2))
	view := cq.MustParse("V[bf](x, y) :- R(x, y)")
	m, err := NewMaintained(view, db, 0.1, WithStrategy(MaterializedStrategy))
	if err != nil {
		t.Fatal(err)
	}
	const n = 3 * minChurnBatch
	for i := 0; i < n; i++ {
		if err := m.Insert("R", relation.Tuple{relation.Value(i), relation.Value(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	m.Quiesce()
	if got := m.Rebuilds(); got > n/minChurnBatch+1 {
		t.Fatalf("bulk load of %d tuples recompiled %d times; floor of %d should cap it near %d",
			n, got, minChurnBatch, n/minChurnBatch)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	it, _ := m.Query(relation.Tuple{0})
	if got := Drain(it); len(got) != 1 {
		t.Fatalf("after bulk load: query(0) = %v", got)
	}
}

// TestNoopDeleteCounted pins satellite 3: deletes of absent tuples are
// counted, exposed, and harmless.
func TestNoopDeleteCounted(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.NewRelation("R", 2)
	r.MustInsert(1, 2)
	db.Add(r)
	view := cq.MustParse("V[bf](x, y) :- R(x, y)")
	m, err := NewMaintained(view, db, 10, WithStrategy(MaterializedStrategy))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Delete("R", relation.Tuple{7, 7}); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete("R", relation.Tuple{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete("R", relation.Tuple{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	// {7,7} was never present; the second {1,2} delete was buffered after
	// the one that removes it — both are set-semantics no-ops.
	if got := m.NoopDeletes(); got != 2 {
		t.Fatalf("NoopDeletes = %d, want 2", got)
	}
	it, _ := m.Query(relation.Tuple{1})
	if got := Drain(it); len(got) != 0 {
		t.Fatalf("delete did not apply: %v", got)
	}
}

// recordingLog captures UpdateLog traffic for sequencing assertions.
type recordingLog struct {
	appends []uint64
	compact uint64
}

func (l *recordingLog) Append(seq uint64, rel string, t relation.Tuple, del bool) error {
	l.appends = append(l.appends, seq)
	return nil
}

func (l *recordingLog) Compact(applied uint64) error {
	l.compact = applied
	return nil
}

// failingLog fails every append.
type failingLog struct{}

func (failingLog) Append(uint64, string, relation.Tuple, bool) error {
	return fmt.Errorf("log unavailable")
}
func (failingLog) Compact(uint64) error { return nil }

// TestUpdateLogSequencing checks the log-before-buffer protocol: appends
// carry gapless increasing sequence numbers, compaction trails the last
// compiled change, and a failed append fails (and un-buffers) the update.
func TestUpdateLogSequencing(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.NewRelation("R", 2)
	r.MustInsert(1, 2)
	db.Add(r)
	view := cq.MustParse("V[bf](x, y) :- R(x, y)")
	m, err := NewMaintained(view, db, 10, WithStrategy(MaterializedStrategy))
	if err != nil {
		t.Fatal(err)
	}
	log := &recordingLog{}
	m.SetUpdateLog(log, 0)
	for i := 0; i < 5; i++ {
		if err := m.Insert("R", relation.Tuple{relation.Value(10 + i), 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(log.appends) != 5 {
		t.Fatalf("logged %d appends, want 5", len(log.appends))
	}
	for i, seq := range log.appends {
		if seq != uint64(i+1) {
			t.Fatalf("append %d has seq %d, want %d", i, seq, i+1)
		}
	}
	if log.compact != 5 {
		t.Fatalf("compacted to %d, want 5", log.compact)
	}

	m.SetUpdateLog(failingLog{}, m.LastSeq())
	if err := m.Insert("R", relation.Tuple{50, 1}); err == nil {
		t.Fatal("insert with failing log acknowledged")
	}
	if m.Pending() != 0 {
		t.Fatalf("failed append left %d changes buffered", m.Pending())
	}
	// The sequence must not have burned a number on the failure.
	m.SetUpdateLog(log, m.LastSeq())
	if err := m.Insert("R", relation.Tuple{51, 1}); err != nil {
		t.Fatal(err)
	}
	if got := log.appends[len(log.appends)-1]; got != 6 {
		t.Fatalf("post-failure append has seq %d, want 6", got)
	}
}
