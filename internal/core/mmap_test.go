package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"cqrep/internal/relation"
)

// saveSnapshot writes r's snapshot frame to a fresh file under t.TempDir.
func saveSnapshot(t *testing.T, r *Representation) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "rep.cqs")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.WriteTo(f); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMmapLoadIdentity checks an mmap-loaded representation answers
// byte-for-byte identically to the compiled one for every snapshot-capable
// strategy, and that materialization restores the stored statistics.
func TestMmapLoadIdentity(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"primitive", []Option{WithStrategy(PrimitiveStrategy), WithTau(4)}},
		{"decomposition", []Option{WithStrategy(DecompositionStrategy)}},
		{"materialized", []Option{WithStrategy(MaterializedStrategy)}},
		{"direct", []Option{WithStrategy(DirectStrategy)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			view, db := triangleFixture(t)
			r, err := Build(view, db, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			path := saveSnapshot(t, r)
			m, err := OpenRepresentationMmap(path)
			if err != nil {
				t.Fatalf("OpenRepresentationMmap: %v", err)
			}
			if m.View().Name != r.View().Name {
				t.Fatalf("View().Name = %q before materialization, want %q", m.View().Name, r.View().Name)
			}
			if want, got := snapEnum(t, r), snapEnum(t, m); !bytes.Equal(want, got) {
				t.Fatalf("mmap enumeration differs from compiled (%d vs %d bytes)", len(want), len(got))
			}
			if m.Stats().Strategy != r.Stats().Strategy {
				t.Fatalf("strategy %v != %v", m.Stats().Strategy, r.Stats().Strategy)
			}
			if m.Stats().Entries != r.Stats().Entries {
				t.Fatalf("entries %d != %d", m.Stats().Entries, r.Stats().Entries)
			}
			if m.Stats().BuildTime != r.Stats().BuildTime {
				t.Fatalf("BuildTime %v != %v", m.Stats().BuildTime, r.Stats().BuildTime)
			}
			// Re-encoding a materialized mmap load reproduces the file.
			orig, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if _, err := m.WriteTo(&buf); err != nil {
				t.Fatalf("re-save: %v", err)
			}
			if !bytes.Equal(orig, buf.Bytes()) {
				t.Fatal("re-saved mmap load differs from the original snapshot bytes")
			}
		})
	}
}

// TestMmapLoadSharded checks the per-shard laziness of the v2 composite
// payload: a bound-key access request materializes exactly the owning
// shard, and full merge enumeration matches the eager load byte for byte.
func TestMmapLoadSharded(t *testing.T) {
	view, db := triangleFixture(t)
	r, err := Build(view, db, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	path := saveSnapshot(t, r)
	m, err := OpenRepresentationMmap(path)
	if err != nil {
		t.Fatalf("OpenRepresentationMmap: %v", err)
	}
	if m.lazy == nil || m.nv != nil {
		t.Fatal("open must not materialize the composite")
	}

	// One bound-key request: the composite's routing metadata and exactly
	// one shard materialize.
	vb := sampleBindings(r, 1, 1)[0]
	if want, got := enumBytes(r, vb), enumBytes(m, vb); !bytes.Equal(want, got) {
		t.Fatalf("mmap bound-key enumeration differs for %v", vb)
	}
	sb, ok := m.be.(*shardedBackend)
	if !ok {
		t.Fatalf("composite backend is %T", m.be)
	}
	materialized := 0
	for _, sub := range sb.subs {
		if sub.nv != nil {
			materialized++
		}
	}
	if materialized != 1 {
		t.Fatalf("%d shards materialized after one bound-key request, want 1", materialized)
	}

	// Full identity across the request space (materializes everything).
	if want, got := snapEnum(t, r), snapEnum(t, m); !bytes.Equal(want, got) {
		t.Fatal("mmap sharded enumeration differs from compiled")
	}
	if m.Stats().Shards != 4 {
		t.Fatalf("Stats().Shards = %d, want 4", m.Stats().Shards)
	}
}

// TestMmapV1BackCompat loads the committed version-1 fixtures through the
// mmap path and compares them against the eager loader.
func TestMmapV1BackCompat(t *testing.T) {
	for _, name := range []string{"v1-primitive.cqs", "v1-decomposition.cqs", "v1-materialized.cqs"} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join("testdata", name)
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			eager, err := ReadRepresentation(f)
			f.Close()
			if err != nil {
				t.Fatal(err)
			}
			m, err := OpenRepresentationMmap(path)
			if err != nil {
				t.Fatalf("OpenRepresentationMmap: %v", err)
			}
			if want, got := snapEnum(t, eager), snapEnum(t, m); !bytes.Equal(want, got) {
				t.Fatal("mmap v1 enumeration differs from eager load")
			}
		})
	}
}

// TestMmapRejectsCorruption pins the mmap error contract: header-level
// damage fails at open with the usual typed errors, payload-level damage
// surfaces at first touch through the no-error access surfaces.
func TestMmapRejectsCorruption(t *testing.T) {
	view, db := triangleFixture(t)
	r, err := Build(view, db, WithStrategy(PrimitiveStrategy), WithTau(4))
	if err != nil {
		t.Fatal(err)
	}
	path := saveSnapshot(t, r)
	snap, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	write := func(t *testing.T, b []byte) string {
		t.Helper()
		p := filepath.Join(t.TempDir(), "bad.cqs")
		if err := os.WriteFile(p, b, 0o666); err != nil {
			t.Fatal(err)
		}
		return p
	}

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), snap...)
		bad[0] ^= 0xff
		if _, err := OpenRepresentationMmap(write(t, bad)); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("err = %v, want ErrBadSnapshot", err)
		}
	})
	t.Run("version skew", func(t *testing.T) {
		bad := append([]byte(nil), snap...)
		binary.BigEndian.PutUint16(bad[len(snapshotMagic):], snapshotVersion+41)
		if _, err := OpenRepresentationMmap(write(t, bad)); !errors.Is(err, ErrSnapshotVersion) {
			t.Fatalf("err = %v, want ErrSnapshotVersion", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := OpenRepresentationMmap(write(t, snap[:len(snap)-3])); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("err = %v, want ErrBadSnapshot", err)
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		if _, err := OpenRepresentationMmap(write(t, append(append([]byte(nil), snap...), 0x00))); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("err = %v, want ErrBadSnapshot", err)
		}
	})
	t.Run("payload bitflip surfaces at first touch", func(t *testing.T) {
		bad := append([]byte(nil), snap...)
		bad[snapshotHeaderLen+len(bad)/2] ^= 0x01
		m, err := OpenRepresentationMmap(write(t, bad))
		if err != nil {
			t.Fatalf("open must defer payload verification, got %v", err)
		}
		vb := sampleBindings(r, 1, 1)[0]
		it := m.Query(vb)
		if _, ok := it.Next(); ok {
			t.Fatal("corrupt mmap load yielded a tuple")
		}
		if err := IterErr(it); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("IterErr = %v, want ErrBadSnapshot", err)
		}
		if _, err := m.Bind(map[string]relation.Value{}); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("Bind err = %v, want ErrBadSnapshot", err)
		}
		if m.Exists(vb) {
			t.Fatal("corrupt mmap load claims existence")
		}
	})
	t.Run("sharded shard-frame bitflip surfaces on routed request", func(t *testing.T) {
		sharded, err := Build(view, db, WithShards(3))
		if err != nil {
			t.Fatal(err)
		}
		spath := saveSnapshot(t, sharded)
		ssnap, err := os.ReadFile(spath)
		if err != nil {
			t.Fatal(err)
		}
		// Flip a byte deep in the second half of the file: inside some
		// shard's nested frame, past the composite prefix.
		bad := append([]byte(nil), ssnap...)
		bad[3*len(bad)/4] ^= 0x01
		m, err := OpenRepresentationMmap(write(t, bad))
		if err != nil {
			t.Fatalf("open must defer shard verification, got %v", err)
		}
		// Some bound-key request routes to the damaged shard; merge
		// enumeration (free shard key needs none here, so drive every
		// binding) must surface ErrBadSnapshot on at least one stream.
		var hit bool
		for _, vb := range sampleBindings(sharded, 50, 1) {
			it := m.Query(vb)
			for {
				if _, ok := it.Next(); !ok {
					break
				}
			}
			if err := IterErr(it); errors.Is(err, ErrBadSnapshot) {
				hit = true
				break
			}
		}
		if !hit {
			t.Fatal("no routed request surfaced the damaged shard frame")
		}
	})
}
