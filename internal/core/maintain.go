package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"cqrep/internal/cq"
	"cqrep/internal/relation"
)

// Maintained wraps a Representation with update support — the paper's
// second open problem (Section 8). The simple, provably-correct strategy
// implemented here is snapshot-plus-amortized-rebuild:
//
//   - Inserts and deletes are buffered under a short write lock; queries
//     answer against the last compiled snapshot (no torn reads).
//   - Once the buffered change count exceeds fraction·|D|, a rebuild is
//     triggered off the request path: the snapshot database is cloned, the
//     batch applied to the clone, a fresh Representation compiled from it,
//     and the (representation, database) pair swapped in atomically.
//     Queries keep draining the old snapshot throughout — its relations are
//     never mutated — giving amortized update cost O(T_C / (fraction·|D|))
//     with zero read stalls.
//   - For sharded representations (WithShards) the batch maps back through
//     the partitioner and only the dirty shards recompile, reusing every
//     clean shard's structure — the amortized cost above divides by the
//     shard count when churn is shard-local (see Representation.rebuildFor).
//
// This is the baseline any dynamic structure must beat; the recent
// dichotomy of Berkholz et al. [8] cited by the paper shows constant-time
// maintenance is impossible for most joins, so an amortized rebuild is the
// honest general-purpose answer.
//
// Maintained is safe for concurrent use: any number of goroutines may call
// Query/Insert/Delete/Flush. Ownership of the database passes to Maintained
// at construction; callers must not mutate it afterwards.
type Maintained struct {
	view *cq.View
	opts []Option

	fraction float64
	rep      atomic.Pointer[Representation]

	mu           sync.RWMutex // guards db, pending, seq, counters, err
	db           *relation.Database
	pending      []change
	seq          uint64 // last assigned change sequence number
	log          UpdateLog
	rebuilds     int
	deltaApplies int
	noopDeletes  int
	err          error
	compactErr   error

	rebuilding atomic.Bool
	wg         sync.WaitGroup

	// testHookPreClear, when set (tests only, before any use), runs right
	// before rebuildBatch clears the rebuilding flag — the window in which
	// a concurrent triggerRebuild loses its CompareAndSwap and relies on
	// the post-clear staleness re-check for liveness.
	testHookPreClear func()
	// testHookBatchTaken runs right after rebuildBatch snapshots its batch
	// and releases the lock — the window in which the snapshot must be
	// independent of the live pending slice.
	testHookBatchTaken func()
}

// UpdateLog is the durable update log Maintained writes before buffering
// (see internal/wal): Append persists one change under the buffer lock so
// the log order is exactly the buffer order, and Compact is invoked after
// every successful rebuild with the highest sequence number the new
// snapshot contains. Implementations decide whether (and how) to actually
// truncate; a failed Append fails the Insert/Delete that caused it — an
// update that is not durable is not acknowledged.
type UpdateLog interface {
	Append(seq uint64, rel string, t relation.Tuple, del bool) error
	Compact(applied uint64) error
}

type change struct {
	seq    uint64
	rel    string
	tuple  relation.Tuple
	delete bool
}

// minChurnBatch floors the staleness budget: fraction·|D| on an empty or
// tiny database degenerates to a rebuild per insert (budget 0), turning
// bulk-loading a fresh Maintained into a compile storm. Batching at least
// this many changes keeps bootstrap amortized; fraction <= 0 still means
// rebuild-on-every-change (the explicit synchronous-maintenance mode).
const minChurnBatch = 32

// NewMaintained compiles the view and arms the rebuild policy. fraction is
// the staleness budget relative to |D| (e.g. 0.1 rebuilds after 10% churn);
// values <= 0 rebuild on every change.
func NewMaintained(view *cq.View, db *relation.Database, fraction float64, opts ...Option) (*Maintained, error) {
	return NewMaintainedContext(context.Background(), view, db, fraction, opts...)
}

// NewMaintainedContext is NewMaintained with cancellation of the initial
// compile. ctx governs only construction: background rebuilds triggered by
// later churn belong to the Maintained's own lifetime, not the
// constructor's, and are bounded by the staleness policy instead.
func NewMaintainedContext(ctx context.Context, view *cq.View, db *relation.Database, fraction float64, opts ...Option) (*Maintained, error) {
	rep, err := BuildContext(ctx, view, db, opts...)
	if err != nil {
		return nil, err
	}
	m := &Maintained{view: view, db: db, opts: opts, fraction: fraction}
	m.rep.Store(rep)
	return m, nil
}

// Insert buffers a tuple insertion into the named base relation. When the
// buffered churn crosses the staleness budget a background rebuild starts;
// Insert itself never blocks on compilation.
func (m *Maintained) Insert(rel string, t relation.Tuple) error {
	return m.buffer(rel, t, false)
}

// Delete buffers a tuple deletion from the named base relation, with the
// same non-blocking rebuild policy as Insert.
func (m *Maintained) Delete(rel string, t relation.Tuple) error {
	return m.buffer(rel, t, true)
}

func (m *Maintained) buffer(rel string, t relation.Tuple, del bool) error {
	m.mu.Lock()
	r, err := m.db.Relation(rel)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	// Both paths must validate arity: a silently buffered wrong-arity
	// delete would never match anything and poison the batch's semantics
	// (historically only inserts were checked).
	if r.Arity() != len(t) {
		m.mu.Unlock()
		op := "inserting"
		if del {
			op = "deleting"
		}
		return fmt.Errorf("%w: %s arity-%d tuple for %s/%d", ErrArity, op, len(t), rel, r.Arity())
	}
	c := change{seq: m.seq + 1, rel: rel, tuple: t.Clone(), delete: del}
	if m.log != nil {
		// Log before buffering: once buffer returns nil the update is
		// durable. A failed append leaves seq and pending untouched, so
		// the caller can retry without a gap in the log.
		if err := m.log.Append(c.seq, c.rel, c.tuple, c.delete); err != nil {
			m.mu.Unlock()
			return fmt.Errorf("core: update log append: %w", err)
		}
	}
	m.seq = c.seq
	m.pending = append(m.pending, c)
	stale := m.staleLocked()
	m.mu.Unlock()
	if stale {
		m.triggerRebuild()
	}
	return nil
}

// SetUpdateLog arms the durable update log. lastSeq is the highest
// sequence number already in the log (0 for a fresh one); new changes are
// numbered after it. Must be called before any Insert/Delete/Replay —
// changes buffered earlier are not retroactively logged.
func (m *Maintained) SetUpdateLog(l UpdateLog, lastSeq uint64) {
	m.mu.Lock()
	m.log = l
	if lastSeq > m.seq {
		m.seq = lastSeq
	}
	m.mu.Unlock()
}

// Replay buffers one change recovered from the update log without
// re-logging it and without triggering a rebuild — recovery replays the
// whole tail and then calls Flush once. Replay is idempotent under the
// relation set semantics: an insert already reflected in the snapshot
// re-applies as a no-op, a delete of an absent tuple is counted in
// NoopDeletes (see the rebuild apply loop) and changes nothing.
func (m *Maintained) Replay(rel string, t relation.Tuple, del bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, err := m.db.Relation(rel)
	if err != nil {
		return err
	}
	if r.Arity() != len(t) {
		return fmt.Errorf("%w: replaying arity-%d tuple for %s/%d", ErrArity, len(t), rel, r.Arity())
	}
	m.seq++
	m.pending = append(m.pending, change{seq: m.seq, rel: rel, tuple: t.Clone(), delete: del})
	return nil
}

// staleLocked reports whether the buffered churn exceeds the policy budget
// fraction·|D|, floored at minChurnBatch so an empty or tiny database does
// not rebuild once per change (fraction <= 0 keeps meaning exactly that).
// Callers hold m.mu (read or write).
func (m *Maintained) staleLocked() bool {
	if len(m.pending) == 0 {
		return false
	}
	budget := m.fraction * float64(m.db.Size())
	if m.fraction > 0 && budget < minChurnBatch {
		budget = minChurnBatch
	}
	return float64(len(m.pending)) > math.Max(budget, 0)
}

// triggerRebuild starts a background rebuild unless one is already in
// flight or a previous rebuild failed (a standing error pauses automatic
// maintenance — retrying every failing build in a loop would burn CPU
// without making progress; Flush retries after surfacing the error).
func (m *Maintained) triggerRebuild() {
	m.mu.RLock()
	failed := m.err != nil
	m.mu.RUnlock()
	if failed {
		return
	}
	if !m.rebuilding.CompareAndSwap(false, true) {
		return
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.rebuildBatch()
	}()
}

// rebuildBatch performs one build-aside cycle: snapshot the pending batch,
// clone the database, apply, compile, swap. It clears the rebuilding flag
// and re-triggers itself when more churn accumulated during the build.
func (m *Maintained) rebuildBatch() {
	m.mu.RLock()
	n := len(m.pending)
	// Copy the batch under the lock: m.pending[:n] would alias the live
	// backing array that concurrent buffer appends keep writing into —
	// safe only as long as appends never touch an index below n, an
	// invariant one refactor (in-place compaction, reordering, reuse of
	// freed capacity) away from silent batch corruption. The WAL sequence
	// numbers embedded in the batch make that corruption durable, so the
	// snapshot must be independent.
	batch := append([]change(nil), m.pending[:n]...)
	db := m.db
	m.mu.RUnlock()
	if m.testHookBatchTaken != nil {
		m.testHookBatchTaken()
	}

	if n == 0 {
		m.rebuilding.Store(false)
		m.retriggerIfStale()
		return
	}

	clone := db.Clone()
	noops := 0
	var applyErr error
	for _, c := range batch {
		r, err := clone.Relation(c.rel)
		if err != nil {
			applyErr = err
			break
		}
		if c.delete {
			// Deleting an absent tuple is a set-semantics no-op; count it
			// (a client deleting blind, or a WAL replay over a snapshot
			// that already contains the delete) instead of silently
			// swallowing the report.
			if !r.Delete(c.tuple) {
				noops++
			}
		} else if err := r.Insert(c.tuple); err != nil {
			applyErr = err
			break
		}
	}
	// Capable backends absorb the batch through the delta path; sharded
	// representations recompile only the shards whose partition the batch
	// touched; everything else is a full recompile (Representation.rebuildFor).
	var rep *Representation
	deltas := 0
	if applyErr == nil {
		rep, deltas, applyErr = m.rep.Load().rebuildFor(clone, batch, m.opts)
	}

	m.mu.Lock()
	var compactTo uint64
	if applyErr != nil {
		// Keep the batch buffered so no update is lost; further automatic
		// rebuilds are suppressed until Flush observes the error and
		// retries explicitly (see triggerRebuild).
		m.err = applyErr
	} else {
		m.db = clone
		m.pending = append([]change(nil), m.pending[n:]...)
		m.rebuilds++
		m.deltaApplies += deltas
		m.noopDeletes += noops
		m.rep.Store(rep)
		compactTo = batch[n-1].seq
	}
	log := m.log
	m.mu.Unlock()

	if applyErr == nil && log != nil {
		// The new snapshot contains every change up to compactTo; let the
		// log drop them (behind its snapshot-first protocol). Compaction
		// failures never block maintenance — the log just stays longer.
		if cerr := log.Compact(compactTo); cerr != nil {
			m.mu.Lock()
			m.compactErr = cerr
			m.mu.Unlock()
		}
	}

	if m.testHookPreClear != nil {
		m.testHookPreClear()
	}
	m.rebuilding.Store(false)
	m.retriggerIfStale()
}

// retriggerIfStale re-examines staleness after the rebuilding flag has
// been cleared and chains another rebuild if churn warrants one. The
// staleness check MUST happen after Store(false): a triggerRebuild racing
// between an earlier staleness snapshot and the flag clear loses its CAS,
// and if that churn were only accounted before the clear the wakeup would
// be lost — maintenance would stall until the next unrelated Insert or
// Query.
func (m *Maintained) retriggerIfStale() {
	m.mu.RLock()
	stale := m.err == nil && m.staleLocked()
	m.mu.RUnlock()
	if stale {
		m.triggerRebuild()
	}
}

// Flush synchronously applies all buffered changes: it waits for any
// in-flight background rebuild, then compiles whatever is still pending.
func (m *Maintained) Flush() error {
	for {
		m.Quiesce()
		m.mu.Lock()
		n := len(m.pending)
		err := m.err
		m.err = nil
		m.mu.Unlock()
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
		if m.rebuilding.CompareAndSwap(false, true) {
			m.rebuildBatch()
		}
	}
}

// Quiesce blocks until no background rebuild is in flight. Afterwards the
// snapshot reflects every change that was buffered before the last rebuild
// trigger (tests use it to observe rebuild effects deterministically).
func (m *Maintained) Quiesce() { m.wg.Wait() }

// Query answers an access request against the current snapshot. It never
// blocks on a rebuild: when the snapshot is past its staleness budget a
// background rebuild is triggered and the query proceeds against the old
// (consistent) snapshot. Queries do not fail when maintenance does —
// after a rebuild failure they keep serving the last good snapshot; the
// failure is reported by Err and by the next Flush, which retries it.
func (m *Maintained) Query(vb relation.Tuple) (Iterator, error) {
	m.mu.RLock()
	stale := m.staleLocked()
	m.mu.RUnlock()
	if stale {
		m.triggerRebuild()
	}
	return m.rep.Load().Query(vb), nil
}

// Err returns the error of the most recent failed rebuild, if any, without
// clearing it. While it is non-nil automatic rebuilds are paused and the
// failed batch stays buffered; Flush clears the error and retries.
func (m *Maintained) Err() error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.err
}

// Exists reports whether the access request has any answer in the current
// snapshot.
func (m *Maintained) Exists(vb relation.Tuple) (bool, error) {
	it, err := m.Query(vb)
	if err != nil {
		return false, err
	}
	_, ok := it.Next()
	if err := IterErr(it); err != nil {
		return false, err
	}
	return ok, nil
}

// Pending returns the number of buffered, not-yet-applied changes.
func (m *Maintained) Pending() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.pending)
}

// Rebuilds returns how many times the representation was recompiled.
func (m *Maintained) Rebuilds() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.rebuilds
}

// DeltaApplies returns how many backends absorbed a change batch through
// the delta-application path instead of a recompile (per rebuild cycle,
// one for an unsharded backend, up to the dirty-shard count for sharded
// representations).
func (m *Maintained) DeltaApplies() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.deltaApplies
}

// NoopDeletes returns how many buffered deletes targeted a tuple that was
// not present when the batch applied — set-semantics no-ops that earlier
// versions silently swallowed.
func (m *Maintained) NoopDeletes() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.noopDeletes
}

// LastSeq returns the sequence number of the most recently buffered
// change (0 before the first).
func (m *Maintained) LastSeq() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.seq
}

// CompactErr returns the error of the most recent failed update-log
// compaction, if any. Compaction failures never pause maintenance — the
// log merely keeps entries the snapshot already contains.
func (m *Maintained) CompactErr() error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.compactErr
}

// Rep exposes the current snapshot's representation (for stats).
func (m *Maintained) Rep() *Representation { return m.rep.Load() }

// ResumeMaintained arms maintenance over an already-compiled
// representation — typically one loaded from a snapshot, whose frame
// carries the base relations it was compiled over. Recovery pairs it with
// an update log: load the snapshot, ResumeMaintained, SetUpdateLog with
// the log's last sequence, Replay the log's entries, Flush.
func ResumeMaintained(rep *Representation, fraction float64, opts ...Option) (*Maintained, error) {
	if err := rep.ensure(); err != nil {
		return nil, err
	}
	if rep.db == nil {
		return nil, fmt.Errorf("%w: representation carries no base database", ErrBadSnapshot)
	}
	m := &Maintained{view: rep.orig, db: rep.db, opts: opts, fraction: fraction}
	m.rep.Store(rep)
	return m, nil
}
