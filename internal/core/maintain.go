package core

import (
	"fmt"
	"math"

	"cqrep/internal/cq"
	"cqrep/internal/relation"
)

// Maintained wraps a Representation with update support — the paper's
// second open problem (Section 8). The simple, provably-correct strategy
// implemented here is snapshot-plus-amortized-rebuild:
//
//   - Inserts and deletes are buffered; queries answer against the last
//     compiled snapshot (no torn reads).
//   - Once the buffered change count exceeds fraction·|D|, the next query
//     (or an explicit Flush) applies the batch to the base relations and
//     recompiles, giving amortized update cost O(T_C / (fraction·|D|)).
//
// This is the baseline any dynamic structure must beat; the recent
// dichotomy of Berkholz et al. [8] cited by the paper shows constant-time
// maintenance is impossible for most joins, so an amortized rebuild is the
// honest general-purpose answer.
type Maintained struct {
	view *cq.View
	db   *relation.Database
	opts []Option

	rep      *Representation
	fraction float64
	pending  []change
	rebuilds int
}

type change struct {
	rel    string
	tuple  relation.Tuple
	delete bool
}

// NewMaintained compiles the view and arms the rebuild policy. fraction is
// the staleness budget relative to |D| (e.g. 0.1 rebuilds after 10% churn);
// values ≤ 0 rebuild on every change.
func NewMaintained(view *cq.View, db *relation.Database, fraction float64, opts ...Option) (*Maintained, error) {
	rep, err := Build(view, db, opts...)
	if err != nil {
		return nil, err
	}
	return &Maintained{view: view, db: db, opts: opts, rep: rep, fraction: fraction}, nil
}

// Insert buffers a tuple insertion into the named base relation.
func (m *Maintained) Insert(rel string, t relation.Tuple) error {
	r, err := m.db.Relation(rel)
	if err != nil {
		return err
	}
	if r.Arity() != len(t) {
		return fmt.Errorf("core: inserting arity-%d tuple into %s/%d", len(t), rel, r.Arity())
	}
	m.pending = append(m.pending, change{rel: rel, tuple: t.Clone()})
	return nil
}

// Delete buffers a tuple deletion from the named base relation.
func (m *Maintained) Delete(rel string, t relation.Tuple) error {
	if _, err := m.db.Relation(rel); err != nil {
		return err
	}
	m.pending = append(m.pending, change{rel: rel, tuple: t.Clone(), delete: true})
	return nil
}

// stale reports whether the buffered churn exceeds the policy budget.
func (m *Maintained) stale() bool {
	if len(m.pending) == 0 {
		return false
	}
	budget := m.fraction * float64(m.db.Size())
	return float64(len(m.pending)) > math.Max(budget, 0)
}

// Flush applies all buffered changes and recompiles the representation.
func (m *Maintained) Flush() error {
	if len(m.pending) == 0 {
		return nil
	}
	for _, c := range m.pending {
		r, err := m.db.Relation(c.rel)
		if err != nil {
			return err
		}
		if c.delete {
			r.Delete(c.tuple)
		} else if err := r.Insert(c.tuple); err != nil {
			return err
		}
	}
	m.pending = m.pending[:0]
	rep, err := Build(m.view, m.db, m.opts...)
	if err != nil {
		return err
	}
	m.rep = rep
	m.rebuilds++
	return nil
}

// Query answers an access request, rebuilding first when the snapshot is
// past its staleness budget.
func (m *Maintained) Query(vb relation.Tuple) (Iterator, error) {
	if m.stale() {
		if err := m.Flush(); err != nil {
			return nil, err
		}
	}
	return m.rep.Query(vb), nil
}

// Pending returns the number of buffered, not-yet-applied changes.
func (m *Maintained) Pending() int { return len(m.pending) }

// Rebuilds returns how many times the representation was recompiled.
func (m *Maintained) Rebuilds() int { return m.rebuilds }

// Rep exposes the current snapshot's representation (for stats).
func (m *Maintained) Rep() *Representation { return m.rep }
