package core

import (
	"bytes"
	"fmt"
	"strconv"
	"sync"
	"time"

	"cqrep/internal/cq"
	"cqrep/internal/relation"
)

// shard.go implements the sharded composite backend — the partition-then-
// route design: the database is hash-partitioned by the values of one
// shard variable, one sub-representation is compiled per shard (in
// parallel, on the WithWorkers pool), and access requests either route
// directly to the owning shard (shard variable bound) or merge-enumerate
// across all shards in global lexicographic order (shard variable free).
// Both paths answer byte-for-byte identically to the unsharded
// representation; the win is that compilation and — through
// Representation.rebuildFor — maintenance touch only a 1/n slice of the
// data per shard.

// partitioner describes how a full view's database hash-partitions into n
// shards keyed by one head variable. It is derived deterministically from
// (view, n), so a snapshot only needs to store n to reconstruct it.
type partitioner struct {
	n      int
	keyVar string
	keyIdx int // index of the key in the bound valuation; -1 when free
	// view is the per-shard view: identical to the full view except that a
	// base relation needing different partitions for different atoms (the
	// shard variable at different columns) is pulled in under per-atom
	// aliases.
	view  *cq.View
	specs []relSpec
}

// relSpec derives one relation of every per-shard database.
type relSpec struct {
	src  string // relation name in the original database
	name string // name in the per-shard view and database
	cols []int  // columns carrying the shard variable; empty = replicated
}

// shardKeyVar picks the shard variable of a full view: the first bound
// head variable — access requests then route to the owning shard — or,
// for views with no bound variables, the first head variable (free, so
// enumerated answers pin their shard and merge disjointly). keyIdx is the
// key's index in the bound valuation, -1 when the key is free.
func shardKeyVar(full *cq.View) (name string, keyIdx int) {
	for i, a := range full.Pattern {
		if a == cq.Bound {
			// The first bound head variable is, by construction, index 0 of
			// the bound valuation.
			return full.Head[i], 0
		}
	}
	return full.Head[0], -1
}

// newPartitioner derives the shard plan for a full view: the shard
// variable, the per-atom partition columns, and the per-shard view with
// aliases where one base relation needs different partitions per atom.
func newPartitioner(full *cq.View, n int) *partitioner {
	key, keyIdx := shardKeyVar(full)
	p := &partitioner{n: n, keyVar: key, keyIdx: keyIdx}

	colsByAtom := make([][]int, len(full.Body))
	atomsBySrc := make(map[string][]int)
	for j, a := range full.Body {
		for pos, t := range a.Terms {
			if !t.IsConst && t.Var == key {
				colsByAtom[j] = append(colsByAtom[j], pos)
			}
		}
		atomsBySrc[a.Relation] = append(atomsBySrc[a.Relation], j)
	}

	// A relation whose atoms all agree on the partition columns keeps its
	// name (one shared partition); one pulled in with differing columns —
	// e.g. R(x,y), R(y,z), R(z,x) sharded on x — gets a per-atom alias so
	// each alias can hold its own partition of the same base rows.
	aliased := make(map[string]bool)
	for src, atoms := range atomsBySrc {
		for _, j := range atoms[1:] {
			if !equalInts(colsByAtom[j], colsByAtom[atoms[0]]) {
				aliased[src] = true
				break
			}
		}
	}

	shardView := &cq.View{Name: full.Name, Head: full.Head, Pattern: full.Pattern, Body: make([]cq.Atom, len(full.Body))}
	seen := make(map[string]bool)
	for j, a := range full.Body {
		name := a.Relation
		if aliased[a.Relation] {
			name = a.Relation + "@" + strconv.Itoa(j)
		}
		shardView.Body[j] = cq.Atom{Relation: name, Terms: a.Terms}
		if !seen[name] {
			seen[name] = true
			p.specs = append(p.specs, relSpec{src: a.Relation, name: name, cols: colsByAtom[j]})
		}
	}
	p.view = shardView
	return p
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// subDatabases derives all n per-shard databases in one pass per spec.
// Replicated relations (no shard variable in the atom) are shared across
// every shard — they are read-only from here on — while partitioned ones
// split by TupleShard.
func (p *partitioner) subDatabases(db *relation.Database) ([]*relation.Database, error) {
	out := make([]*relation.Database, p.n)
	for i := range out {
		out[i] = relation.NewDatabase()
	}
	for _, spec := range p.specs {
		src, err := db.Relation(spec.src)
		if err != nil {
			return nil, err
		}
		if len(spec.cols) == 0 {
			rel := src
			if spec.name != spec.src {
				rel = src.Renamed(spec.name)
			}
			for _, d := range out {
				d.Add(rel)
			}
			continue
		}
		parts := src.PartitionByColumns(spec.name, spec.cols, p.n)
		for i, d := range out {
			d.Add(parts[i])
		}
	}
	return out, nil
}

// subDatabase derives the single shard-s database, for dirty-shard
// rebuilds that leave the other shards untouched.
func (p *partitioner) subDatabase(db *relation.Database, s int) (*relation.Database, error) {
	out := relation.NewDatabase()
	for _, spec := range p.specs {
		src, err := db.Relation(spec.src)
		if err != nil {
			return nil, err
		}
		switch {
		case len(spec.cols) > 0:
			out.Add(src.FilterShard(spec.name, spec.cols, s, p.n))
		case spec.name != spec.src:
			out.Add(src.Renamed(spec.name))
		default:
			out.Add(src)
		}
	}
	return out, nil
}

// dirtyShards maps a buffered change batch to the shards whose partition
// it touches. all reports that a replicated relation changed, which
// dirties every shard.
func (p *partitioner) dirtyShards(batch []change) (dirty map[int]bool, all bool) {
	dirty = make(map[int]bool)
	for _, c := range batch {
		for _, spec := range p.specs {
			if spec.src != c.rel {
				continue
			}
			if len(spec.cols) == 0 {
				return nil, true
			}
			if s := relation.TupleShard(c.tuple, spec.cols, p.n); s >= 0 {
				dirty[s] = true
			}
		}
	}
	return dirty, false
}

// shardedBackend is the composite backend: n sub-representations over the
// hash-partitioned database, with bound-key routing and lexicographic
// merge enumeration.
type shardedBackend struct {
	parts *partitioner
	subs  []*Representation
}

// owner returns the sub-representation owning the valuation's shard-key
// value, or nil when the shard key is free (merge enumeration) or the
// valuation is too short to carry it (any shard rejects it identically).
func (b *shardedBackend) owner(vb relation.Tuple) *Representation {
	if b.parts.keyIdx < 0 {
		return nil
	}
	if b.parts.keyIdx >= len(vb) {
		return b.subs[0]
	}
	return b.subs[relation.ShardOf(vb[b.parts.keyIdx], len(b.subs))]
}

// Query routes to the owning shard when the shard key is bound; otherwise
// it merge-enumerates all shards in the backend's global enumeration
// order, which the disjoint hash partition makes byte-for-byte identical
// to the unsharded enumeration.
func (b *shardedBackend) Query(vb relation.Tuple) Iterator {
	if sub := b.owner(vb); sub != nil {
		return sub.Query(vb)
	}
	return newMergeIterator(b.subs, vb)
}

// EnumOrder reports the shared sub-backend order (every shard compiles
// the same structure shape over its partition, so the orders agree). It
// goes through the sub-representation — not its backend field directly —
// so a lazily-loaded shard materializes first.
func (b *shardedBackend) EnumOrder() []int { return b.subs[0].EnumOrder() }

// Exists asks the owning shard, or any shard when the key is free.
func (b *shardedBackend) Exists(vb relation.Tuple) bool {
	if sub := b.owner(vb); sub != nil {
		return sub.Exists(vb)
	}
	for _, sub := range b.subs {
		if sub.Exists(vb) {
			return true
		}
	}
	return false
}

// mergeIterator merges per-shard enumerations into the global order:
// every backend enumerates its shard in the same deterministic order —
// lexicographic over the output positions named by EnumOrder (nil = head
// order) — and the hash partition makes the shards' answer sets disjoint,
// so repeatedly yielding the smallest head reproduces the unsharded
// enumeration. Equal heads (impossible for well-formed partitions) break
// deterministically toward the lowest shard index.
type mergeIterator struct {
	order []int
	its   []Iterator
	heads []relation.Tuple
	live  []bool
}

func newMergeIterator(subs []*Representation, vb relation.Tuple) *mergeIterator {
	m := &mergeIterator{
		order: subs[0].EnumOrder(),
		its:   make([]Iterator, len(subs)),
		heads: make([]relation.Tuple, len(subs)),
		live:  make([]bool, len(subs)),
	}
	for i, sub := range subs {
		m.its[i] = sub.Query(vb)
		m.heads[i], m.live[i] = m.its[i].Next()
	}
	return m
}

// lessUnder compares two heads through the enumeration-order permutation.
func (m *mergeIterator) lessUnder(a, b relation.Tuple) bool {
	if m.order == nil {
		return a.Less(b)
	}
	for _, i := range m.order {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Err surfaces the first per-shard terminal error (see IterErr) — in
// particular a lazily-loaded shard whose frame failed to decode, whose
// stream is empty with the decode failure as its terminal error.
func (m *mergeIterator) Err() error {
	for _, it := range m.its {
		if err := IterErr(it); err != nil {
			return err
		}
	}
	return nil
}

// Next yields the smallest head across shards and refills that shard.
func (m *mergeIterator) Next() (relation.Tuple, bool) {
	best := -1
	for i, h := range m.heads {
		if !m.live[i] {
			continue
		}
		if best < 0 || m.lessUnder(h, m.heads[best]) {
			best = i
		}
	}
	if best < 0 {
		return nil, false
	}
	t := m.heads[best]
	m.heads[best], m.live[best] = m.its[best].Next()
	return t, true
}

// buildSharded compiles the partition-then-route composite over db.
func buildSharded(view *cq.View, db *relation.Database, cfg *config) (*Representation, error) {
	r, err := newShell(view, db)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	p := newPartitioner(r.view, cfg.shards)
	dbs, err := p.subDatabases(db)
	if err != nil {
		return nil, err
	}
	subs, err := compileShards(p, dbs, nil, cfg)
	if err != nil {
		return nil, err
	}
	finishSharded(r, p, subs)
	r.stats.BuildTime = time.Since(start)
	return r, nil
}

// compileShards builds one sub-representation per shard database in
// parallel, bounded by cfg.workers. A non-nil entry in reuse is kept
// as-is — dirty-shard rebuilds pass the clean shards there and only
// populate dbs for the dirty ones.
func compileShards(p *partitioner, dbs []*relation.Database, reuse []*Representation, cfg *config) ([]*Representation, error) {
	inner := *cfg
	inner.shards = 1
	subs := make([]*Representation, p.n)
	errs := make([]error, p.n)
	sem := make(chan struct{}, cfg.workers)
	var wg sync.WaitGroup
	for i := 0; i < p.n; i++ {
		if reuse != nil && reuse[i] != nil {
			subs[i] = reuse[i]
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := cfg.ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			ic := inner
			subs[i], errs[i] = buildSingle(p.view, dbs[i], &ic)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return subs, nil
}

// finishSharded installs the composite backend and aggregates the stats:
// entry and byte footprints sum across shards; the per-shard structure
// parameters (τ, α, width, height), which vary with each shard's data,
// report the first shard's values as representative.
func finishSharded(r *Representation, p *partitioner, subs []*Representation) {
	r.be = &shardedBackend{parts: p, subs: subs}
	r.strategy = subs[0].strategy
	r.stats.Strategy = subs[0].strategy
	r.stats.Shards = p.n
	r.stats.Entries, r.stats.Bytes = 0, 0
	for _, s := range subs {
		r.stats.Entries += s.stats.Entries
		r.stats.Bytes += s.stats.Bytes
	}
	r.stats.Tau = subs[0].stats.Tau
	r.stats.Alpha = subs[0].stats.Alpha
	r.stats.Width = subs[0].stats.Width
	r.stats.Height = subs[0].stats.Height
}

// rebuildFor compiles the replacement representation over db (a clone
// with batch already applied), for Maintained's build-aside cycle, and
// reports how many backends absorbed the batch through the delta path.
// Routing, cheapest first:
//
//   - an unsharded backend with the deltaApplier capability applies the
//     batch's output delta on a copy-on-write clone (see delta.go);
//   - a sharded representation recompiles only the shards whose partition
//     the batch touched, reusing every clean shard's compiled structure —
//     and each dirty shard's own backend gets the capability probe first,
//     with the batch mapped through the shard's relation specs;
//   - everything else — incapable backends, deltas out of reach, batches
//     touching a replicated relation — is the full build, exactly as
//     before.
func (r *Representation) rebuildFor(db *relation.Database, batch []change, opts []Option) (*Representation, int, error) {
	cfg, err := newBuildConfig(nil, opts)
	if err != nil {
		return nil, 0, err
	}
	sb, sharded := r.be.(*shardedBackend)
	if !sharded {
		if rep, ok := r.tryDelta(db, batch, cfg); ok {
			return rep, 1, nil
		}
		rep, err := Build(r.orig, db, opts...)
		return rep, 0, err
	}
	dirty, all := sb.parts.dirtyShards(batch)
	if all {
		rep, err := Build(r.orig, db, opts...)
		return rep, 0, err
	}
	shell, err := newShell(r.orig, db)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	p := sb.parts
	dbs := make([]*relation.Database, p.n)
	reuse := make([]*Representation, p.n)
	deltas := 0
	for i, sub := range sb.subs {
		if !dirty[i] {
			reuse[i] = sub
			continue
		}
		subDB, err := p.subDatabase(db, i)
		if err != nil {
			return nil, 0, err
		}
		if rep, ok := sub.tryDelta(subDB, p.shardBatch(batch, i), cfg); ok {
			reuse[i] = rep
			deltas++
			continue
		}
		dbs[i] = subDB
	}
	subs, err := compileShards(p, dbs, reuse, cfg)
	if err != nil {
		return nil, 0, err
	}
	finishSharded(shell, p, subs)
	shell.stats.BuildTime = time.Since(start)
	return shell, deltas, nil
}

// shardBatch maps a change batch onto shard s's relation namespace: a
// change to base relation R becomes one change per spec derived from R
// whose partition owns the tuple, under the spec's (possibly aliased)
// name. Replicated specs never appear here — a batch touching one took
// the full-build path already. Order is preserved, so per-shard net
// semantics match the global batch.
func (p *partitioner) shardBatch(batch []change, s int) []change {
	var out []change
	for _, c := range batch {
		for _, spec := range p.specs {
			if spec.src != c.rel || len(spec.cols) == 0 {
				continue
			}
			if relation.TupleShard(c.tuple, spec.cols, p.n) == s {
				out = append(out, change{seq: c.seq, rel: spec.name, tuple: c.tuple, delete: c.delete})
			}
		}
	}
	return out
}

// EncodeTo writes the composite's snapshot payload: the shard-key variable
// (a cheap consistency check at decode time) followed by each shard's own
// complete snapshot frame, length-prefixed, in shard order. Reusing the
// frame format per shard means a shard's snapshot is self-contained and
// the existing single-backend codec needs no changes.
func (b *shardedBackend) EncodeTo(e *relation.Encoder) {
	e.String(b.parts.keyVar)
	for _, sub := range b.subs {
		var buf bytes.Buffer
		if _, err := sub.WriteTo(&buf); err != nil {
			e.Fail(fmt.Errorf("core: encoding shard frame: %w", err))
			return
		}
		e.Uint(uint64(buf.Len()))
		e.Raw(buf.Bytes())
	}
}
