package core_test

import (
	"fmt"

	"cqrep/internal/core"
	"cqrep/internal/cq"
	"cqrep/internal/relation"
)

// Example demonstrates the full pipeline on Example 1 of the paper: compile
// the mutual-friend view and answer an access request.
func Example() {
	db := relation.NewDatabase()
	r := relation.NewRelation("R", 2)
	for _, e := range [][2]relation.Value{{1, 2}, {1, 3}, {2, 3}, {3, 4}, {1, 4}} {
		r.MustInsert(e[0], e[1])
		r.MustInsert(e[1], e[0])
	}
	db.Add(r)

	view := cq.MustParse("V[bfb](x, y, z) :- R(x, y), R(y, z), R(z, x)")
	rep, err := core.Build(view, db, core.WithTau(2))
	if err != nil {
		panic(err)
	}
	it, err := rep.QueryArgs(map[string]relation.Value{"x": 1, "z": 3})
	if err != nil {
		panic(err)
	}
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		fmt.Println("mutual friend:", t[0])
	}
	// Output:
	// mutual friend: 2
	// mutual friend: 4
}

// ExampleRepresentation_QueryDistinct shows projection semantics (§3.2):
// the co-author view projects the witnessing paper away.
func ExampleRepresentation_QueryDistinct() {
	db := relation.NewDatabase()
	r := relation.NewRelation("R", 2) // (author, paper)
	r.MustInsert(1, 10)
	r.MustInsert(2, 10)
	r.MustInsert(2, 11)
	r.MustInsert(1, 11) // authors 1 and 2 share two papers
	db.Add(r)
	rep, err := core.Build(cq.MustParse("V[bf](x, y) :- R(x, p), R(y, p)"), db, core.WithTau(1))
	if err != nil {
		panic(err)
	}
	it := rep.QueryDistinct(relation.Tuple{1})
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		fmt.Println("co-author:", t[0])
	}
	// Output:
	// co-author: 1
	// co-author: 2
}
